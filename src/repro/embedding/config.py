"""GOSH configuration objects (Table 3 of the paper).

The paper evaluates three named configurations plus a no-coarsening variant:

=============  =====  ======  =================  ================
Configuration    p      lr     e (medium-scale)   e (large-scale)
=============  =====  ======  =================  ================
Fast            0.1    0.050         600               100
Normal          0.3    0.035        1000               200
Slow            0.5    0.025        1400               300
NoCoarsening     —     0.045        1000               200
=============  =====  ======  =================  ================

``epochs_scale`` lets the harness shrink the epoch budgets proportionally for
the laptop-sized synthetic twins while keeping the fast/normal/slow ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GoshConfig", "FAST", "NORMAL", "SLOW", "NO_COARSE", "get_config", "CONFIGURATIONS"]


@dataclass(frozen=True)
class GoshConfig:
    """Hyper-parameters of a GOSH run.

    Attributes mirror the notation of Table 1 / Table 3:

    * ``dim`` — d, features per vertex.
    * ``negative_samples`` — ns.
    * ``learning_rate`` — initial lr (decayed per epoch within each level).
    * ``epochs`` — e, total epoch budget across all levels.
    * ``smoothing_ratio`` — p, fraction of epochs distributed uniformly.
    * ``coarsening_threshold`` — stop coarsening below this many vertices.
    * ``use_coarsening`` — False reproduces the Gosh-NoCoarse rows.
    * ``small_dim_mode`` — the Section 3.1.1 warp-packing switch.
    * ``negative_power`` — exponent of the degree-based noise distribution
      (0 = uniform, the paper's choice).
    * ``kernel_backend`` — which kernel layer executes the updates:
      ``"vectorized"`` (whole-epoch batched ops, default) or ``"reference"``
      (loop-based oracle); used by both the in-memory and the partitioned
      large-graph trainers.
    * ``sampler_backend`` — which host-side sampler produces the large-graph
      engine's positive sample pools: ``"vectorized"`` (whole-part batched,
      default), ``"reference"`` (per-vertex loop oracle), or
      ``"degree_biased"`` (GraphVite-style deg^0.75 hub weighting); the two
      uniform backends draw identical pairs for a fixed seed (see
      :mod:`repro.graph.sampler_backends`).
    * ``execution_mode`` — how the large-graph engine schedules pool
      production against kernel execution: ``"pipelined"`` (background
      producer thread behind a bounded S_GPU queue, default) or
      ``"sequential"`` (single-threaded oracle).  Bit-identical results
      either way (see :mod:`repro.large.pipeline`).
    """

    name: str = "normal"
    dim: int = 128
    negative_samples: int = 3
    learning_rate: float = 0.035
    learning_rate_decay_floor: float = 1e-4
    epochs: int = 1000
    epochs_large: int = 200
    smoothing_ratio: float = 0.3
    coarsening_threshold: int = 100
    max_coarsening_levels: int = 32
    use_coarsening: bool = True
    use_parallel_coarsening: bool = True
    small_dim_mode: bool = True
    negative_power: float = 0.0
    kernel_backend: str = "vectorized"
    sampler_backend: str = "vectorized"
    execution_mode: str = "pipelined"
    seed: int = 0
    # Large-graph engine knobs (Section 3.3 defaults).
    positive_batch_per_vertex: int = 5   # B
    resident_submatrices: int = 3        # P_GPU
    resident_sample_pools: int = 4       # S_GPU

    def scaled(self, epochs_scale: float = 1.0, *, dim: int | None = None) -> "GoshConfig":
        """Return a copy with the epoch budget scaled (and optionally a new d)."""
        new_epochs = max(1, int(round(self.epochs * epochs_scale)))
        new_epochs_large = max(1, int(round(self.epochs_large * epochs_scale)))
        return replace(self, epochs=new_epochs, epochs_large=new_epochs_large,
                       dim=dim if dim is not None else self.dim)

    def with_(self, **kwargs) -> "GoshConfig":
        """Convenience wrapper over :func:`dataclasses.replace`."""
        return replace(self, **kwargs)

    def metadata_echo(self) -> dict[str, object]:
        """The configuration echo stamped into result (and store) metadata.

        One definition shared by :meth:`EmbeddingResult.from_gosh` and the
        checkpoint layer: the store's config hash is computed over exactly
        these keys, so a checkpoint written mid-run and the final result of
        the same run land in lineages with the same hash — which is what lets
        ``--resume`` find the right checkpoint lineage by hash alone.
        """
        return {
            "config": self.name,
            "dim": self.dim,
            "epochs": self.epochs,
            "learning_rate": self.learning_rate,
            "seed": self.seed,
        }

    def validate(self) -> None:
        if self.dim <= 0:
            raise ValueError("dim must be positive")
        if not (0.0 <= self.smoothing_ratio <= 1.0):
            raise ValueError("smoothing_ratio must be in [0, 1]")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.negative_samples < 0:
            raise ValueError("negative_samples must be non-negative")
        if self.coarsening_threshold < 1:
            raise ValueError("coarsening_threshold must be >= 1")
        if self.positive_batch_per_vertex < 1:
            raise ValueError("positive_batch_per_vertex (B) must be >= 1")
        if self.resident_submatrices < 2:
            raise ValueError("resident_submatrices (P_GPU) must be >= 2")
        if self.resident_sample_pools < 1:
            raise ValueError("resident_sample_pools (S_GPU) must be >= 1")
        # Imported here to keep the config module free of gpu imports at
        # module load; the registries are the source of truth for valid names.
        from ..gpu.backends import UnknownBackendError, get_backend
        try:
            get_backend(self.kernel_backend)
        except UnknownBackendError as exc:
            raise ValueError(str(exc)) from exc
        from ..graph.sampler_backends import UnknownSamplerBackendError, get_sampler_backend
        try:
            get_sampler_backend(self.sampler_backend)
        except UnknownSamplerBackendError as exc:
            raise ValueError(str(exc)) from exc
        from ..large.pipeline import normalize_execution_mode
        normalize_execution_mode(self.execution_mode)


#: Table 3 rows.
FAST = GoshConfig(name="fast", smoothing_ratio=0.1, learning_rate=0.050,
                  epochs=600, epochs_large=100)
NORMAL = GoshConfig(name="normal", smoothing_ratio=0.3, learning_rate=0.035,
                    epochs=1000, epochs_large=200)
SLOW = GoshConfig(name="slow", smoothing_ratio=0.5, learning_rate=0.025,
                  epochs=1400, epochs_large=300)
NO_COARSE = GoshConfig(name="no-coarsening", smoothing_ratio=0.0, learning_rate=0.045,
                       epochs=1000, epochs_large=200, use_coarsening=False)

CONFIGURATIONS: dict[str, GoshConfig] = {
    "fast": FAST,
    "normal": NORMAL,
    "slow": SLOW,
    "no-coarsening": NO_COARSE,
    "nocoarse": NO_COARSE,
}


def get_config(name: str) -> GoshConfig:
    """Look up a Table 3 configuration by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in CONFIGURATIONS:
        raise KeyError(f"unknown configuration {name!r}; options: fast, normal, slow, no-coarsening")
    return CONFIGURATIONS[key]
