"""First-class observability: metrics registry, tracing, exposition.

``repro.obs`` is the layer every subsystem reports through:

* :mod:`repro.obs.metrics` — thread-safe ``Counter``/``Gauge``/``Histogram``
  families with label sets behind a :class:`~repro.obs.metrics.MetricsRegistry`
  (process-default :data:`~repro.obs.metrics.REGISTRY` + injectable
  instances), rendered stdlib-only in Prometheus text format.
* :mod:`repro.obs.trace` — low-overhead spans with cross-process trace-id
  propagation over the serve wire protocol, exported as Chrome trace-event
  JSON for Perfetto (``embed --trace``, ``serve/route --trace-dir``).
* :mod:`repro.obs.export` — snapshot adapters turning the existing
  ``stats()`` dicts into ``repro_``-prefixed series, behind ``GET /metrics``,
  the ``metrics`` NDJSON verb, and ``repro-gosh stats --metrics``.

See the README's "Observability" section for the metric taxonomy and the
tracing workflow.
"""

from . import trace
from .export import (
    METRICS_CONTENT_TYPE,
    registry_from_stats,
    render_stats_metrics,
    samples_from_stats,
)
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    counter_sample,
    gauge_sample,
    get_registry,
    histogram_sample,
    render_samples,
)

__all__ = [
    "trace",
    "REGISTRY", "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "Sample", "counter_sample", "gauge_sample", "histogram_sample",
    "render_samples", "get_registry",
    "METRICS_CONTENT_TYPE", "samples_from_stats", "registry_from_stats",
    "render_stats_metrics",
]
