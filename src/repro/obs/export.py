"""Snapshot adapters: the existing ``stats()`` dicts as Prometheus series.

The tentpole constraint of the observability layer is *no test churn*:
every subsystem's ``stats()`` dict keeps its exact shape, and exposition
is a **pure function over those snapshots**.  That buys two things:

* One renderer serves every surface — ``GET /metrics`` on the HTTP front,
  the ``metrics`` NDJSON verb, and ``repro-gosh stats --metrics`` all call
  :func:`render_stats_metrics` on whatever ``QueryServer.stats()`` (or a
  remote server's stats reply) returned.
* Nothing registers live objects into a process-global registry, so tests
  that spawn many servers in one process never collide on series names.

Naming follows the taxonomy in the README's "Observability" section:
every series is ``repro_``-prefixed; the subsystem is the second path
component (``repro_server_…``, ``repro_router_…``, ``repro_service_…``,
``repro_store_…``, ``repro_http_…``, ``repro_fault_…``).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from .metrics import (
    MetricsRegistry,
    Sample,
    counter_sample,
    gauge_sample,
    render_samples,
)

__all__ = ["samples_from_stats", "registry_from_stats", "render_stats_metrics"]

#: Prometheus content type for the classic text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# (stats key, series suffix, help) for the server's scalar counters.
_SERVER_COUNTERS = [
    ("connections_total", "connections_total", "NDJSON connections accepted"),
    ("frames_received", "frames_total", "wire frames received"),
    ("queries_admitted", "queries_admitted_total", "queries past admission"),
    ("queries_answered", "queries_answered_total", "queries answered ok"),
    ("query_errors", "query_errors_total", "queries answered with an error"),
    ("malformed_frames", "malformed_frames_total", "frames rejected as malformed"),
    ("batch_failures", "batch_failures_total",
     "microbatches that fell back to per-request isolation"),
    ("batch_length_mismatches", "batch_length_mismatches_total",
     "service replies shorter than their batch"),
    ("replies_dropped", "replies_dropped_total",
     "replies dropped on dead connections"),
    ("microbatches", "microbatches_total", "microbatches served"),
]

_SERVER_GAUGES = [
    ("inflight", "inflight", "admitted-but-unanswered queries"),
    ("queued", "queued", "queries waiting in the admission queue"),
    ("connections_open", "connections_open", "open NDJSON connections"),
    ("max_inflight", "max_inflight", "admission bound on in-flight queries"),
    ("queue_depth", "queue_depth", "admission bound on queued queries"),
    ("max_batch", "max_batch", "microbatch size bound"),
    ("max_batch_seen", "max_batch_seen", "largest microbatch served"),
    ("stats_stale_served", "stats_stale_served", "stats replies served from "
     "a stale cache because the service snapshot timed out"),
]

_ROUTER_COUNTERS = [
    ("fanouts", "fanouts_total", "query batches fanned out to shards"),
    ("shard_queries", "shard_queries_total", "per-shard frames sent"),
    ("shard_errors", "shard_errors_total", "requests failed by shard trouble"),
    ("plan_errors", "plan_errors_total", "requests failed before fan-out"),
    ("requests_ok", "requests_ok_total", "requests merged successfully"),
    ("requests_failed", "requests_failed_total", "requests failed"),
    ("failovers", "failovers_total", "within-request replica failovers"),
    ("probes_sent", "probes_total", "health probes sent"),
    ("probes_ok", "probes_ok_total", "health probes that succeeded"),
    ("readmissions", "readmissions_total", "replicas readmitted after recovery"),
]

_SERVICE_COUNTERS = [
    ("requests_served", "requests_total", "embed requests served"),
    ("requests_failed", "requests_failed_total", "embed requests failed"),
    ("queries_served", "queries_total", "k-NN queries served"),
    ("microbatches", "microbatches_total", "service-side microbatches"),
    ("embeds_deduped", "embeds_deduped_total",
     "embed-on-miss calls coalesced by single-flight"),
]

_STORE_COUNTERS = [
    ("saves", "saves_total", "embedding versions saved"),
    ("loads", "loads_total", "embedding versions loaded"),
    ("gc_removed", "gc_removed_total", "versions removed by GC"),
    ("staging_swept", "staging_swept_total", "crash-debris staging dirs swept"),
]

_STORE_GAUGES = [
    ("entries", "entries", "stored embedding versions"),
    ("lineages", "lineages", "stored lineages"),
    ("bytes", "bytes", "bytes of stored embedding shards"),
    ("staging_dirs", "staging_dirs", "staging dirs present"),
    ("stale_staging_dirs", "stale_staging_dirs", "staging dirs past the grace period"),
]


def _num(value: Any) -> "float | None":
    return float(value) if isinstance(value, (int, float)) \
        and not isinstance(value, bool) else None


def _scalars(stats: Mapping[str, Any], prefix: str,
             counters: "list[tuple[str, str, str]]",
             gauges: "list[tuple[str, str, str]]" = (),
             labels: "Mapping[str, Any]" = (),
             ) -> "list[Sample]":
    out: list[Sample] = []
    for key, suffix, help_text in counters:
        v = _num(stats.get(key))
        if v is not None:
            out.append(counter_sample(f"{prefix}_{suffix}", help_text, v, labels))
    for key, suffix, help_text in gauges:
        v = _num(stats.get(key))
        if v is not None:
            out.append(gauge_sample(f"{prefix}_{suffix}", help_text, v, labels))
    return out


def _server_samples(server: Mapping[str, Any]) -> "list[Sample]":
    samples = _scalars(server, "repro_server", _SERVER_COUNTERS, _SERVER_GAUGES)
    # The three rejection counters fold into one labelled series.
    for key, reason in (("rejected_overload", "overloaded"),
                        ("rejected_tool_quota", "tool-quota"),
                        ("rejected_shutdown", "shutting-down")):
        v = _num(server.get(key))
        if v is not None:
            samples.append(counter_sample(
                "repro_server_rejected_total", "queries rejected at admission",
                v, {"reason": reason}))
    by_tool = server.get("inflight_by_tool")
    if isinstance(by_tool, Mapping):
        for tool, n in sorted(by_tool.items()):
            v = _num(n)
            if v is not None:
                samples.append(gauge_sample(
                    "repro_server_inflight_by_tool",
                    "in-flight queries per tool", v, {"tool": tool}))
    return samples


def _latency_samples(latency: Mapping[str, Any]) -> "list[Sample]":
    # Imported lazily: repro.serve pulls in repro.api, which (through the
    # embedding pipeline's trace hooks) imports repro.obs — a module-level
    # import here would close that cycle during package init.
    from ..serve.metrics import LatencyHistogram

    histograms = latency.get("histograms")
    if not isinstance(histograms, Mapping):
        return []
    samples: list[Sample] = []
    for stage, payload in sorted(histograms.items()):
        try:
            hist = LatencyHistogram.from_dict(payload)
        except (ValueError, KeyError, TypeError):
            continue
        samples.append(hist.metric_sample(
            "repro_server_latency_seconds",
            "request latency by stage (queue_wait/service/total)",
            {"stage": str(stage)}))
    return samples


def _http_samples(http: Mapping[str, Any]) -> "list[Sample]":
    samples = _scalars(
        http, "repro_http",
        [("connections_total", "connections_total", "HTTP connections accepted"),
         ("requests_total", "requests_total", "HTTP requests served")],
        [("connections_open", "connections_open", "open HTTP connections")])
    by_status = http.get("responses_by_status")
    if isinstance(by_status, Mapping):
        for status, n in sorted(by_status.items()):
            v = _num(n)
            if v is not None:
                samples.append(counter_sample(
                    "repro_http_responses_total", "HTTP responses by status",
                    v, {"status": str(status)}))
    return samples


def _router_samples(service: Mapping[str, Any]) -> "list[Sample]":
    from ..serve.metrics import StateClock  # lazy: see _latency_samples

    router = service.get("router")
    if not isinstance(router, Mapping):
        return []
    samples = _scalars(router, "repro_router", _ROUTER_COUNTERS,
                       [("shards", "shards", "shard ranges routed")])
    for group in service.get("health") or []:
        if not isinstance(group, Mapping):
            continue
        shard = str(group.get("range_index", "?"))
        for key, suffix, help_text in (
                ("frames", "frames_total", "frames offered to the shard group"),
                ("frames_failed", "frames_failed_total",
                 "frames no replica could answer"),
                ("failovers", "failovers_total", "failover attempts")):
            v = _num(group.get(key))
            if v is not None:
                samples.append(counter_sample(
                    f"repro_router_shard_{suffix}", help_text, v,
                    {"shard": shard}))
        for row in group.get("replicas") or []:
            if not isinstance(row, Mapping):
                continue
            labels = {"shard": shard, "replica": str(row.get("address", "?"))}
            samples.append(gauge_sample(
                "repro_router_replica_healthy",
                "1 when the health machine marks the replica healthy",
                1.0 if row.get("state") == "healthy" else 0.0, labels))
            for key, suffix, help_text in (
                    ("routed", "routed_total", "frames routed to the replica"),
                    ("frames_ok", "frames_ok_total", "frames answered ok"),
                    ("exchange_failures", "exchange_failures_total",
                     "failed exchanges"),
                    ("probes_sent", "probes_total", "probes sent"),
                    ("probes_ok", "probes_ok_total", "probes succeeded"),
                    ("readmissions", "readmissions_total",
                     "readmissions after recovery")):
                v = _num(row.get(key))
                if v is not None:
                    samples.append(counter_sample(
                        f"repro_router_replica_{suffix}", help_text, v, labels))
            dwell = row.get("dwell")
            if isinstance(dwell, Mapping):
                samples.extend(StateClock.summary_samples(
                    dwell, "repro_router_replica_state_seconds_total",
                    "seconds the replica spent in each health state", labels))
    fleet = service.get("fleet_latency")
    if isinstance(fleet, Mapping):
        for stage, summary in sorted(fleet.items()):
            if not isinstance(summary, Mapping):
                continue
            for q in ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"):
                v = _num(summary.get(q))
                if v is not None:
                    samples.append(gauge_sample(
                        "repro_router_fleet_latency_ms",
                        "fleet-wide latency aggregated across shard histograms",
                        v, {"stage": str(stage), "quantile": q[:-3]}))
            v = _num(summary.get("count"))
            if v is not None:
                samples.append(counter_sample(
                    "repro_router_fleet_latency_requests_total",
                    "requests in the fleet-wide latency aggregate", v,
                    {"stage": str(stage)}))
    return samples


def _cache_samples(name: str, cache: Mapping[str, Any]) -> "list[Sample]":
    return _scalars(
        cache, f"repro_service_{name}_cache",
        [("hits", "hits_total", f"{name} cache hits"),
         ("misses", "misses_total", f"{name} cache misses"),
         ("evictions", "evictions_total", f"{name} cache evictions")],
        [("entries", "entries", f"{name} cache entries")])


def _service_samples(service: Mapping[str, Any]) -> "list[Sample]":
    samples = _scalars(service, "repro_service", _SERVICE_COUNTERS)
    for key, name in (("hierarchy_cache", "hierarchy"),
                      ("engine_cache", "engine")):
        cache = service.get(key)
        if isinstance(cache, Mapping):
            samples.extend(_cache_samples(name, cache))
    store = service.get("store")
    if isinstance(store, Mapping):
        samples.extend(_scalars(store, "repro_store",
                                _STORE_COUNTERS, _STORE_GAUGES))
    query = service.get("query")
    if isinstance(query, Mapping):
        samples.extend(_scalars(
            query, "repro_service_query",
            [("batches", "batches_total", "query-engine batches"),
             ("rows_scored", "rows_scored_total", "candidate rows scored"),
             ("seconds", "seconds_total", "seconds in query backends")]))
    return samples


def samples_from_stats(stats: Mapping[str, Any]) -> "list[Sample]":
    """Adapt one ``QueryServer.stats()``-shaped snapshot into samples.

    Tolerant by construction: every lookup is a defensive ``.get``, so a
    stub service (whose ``stats()`` returns anything) simply contributes no
    series rather than failing the scrape.
    """
    samples: list[Sample] = []
    server = stats.get("server")
    if isinstance(server, Mapping):
        samples.extend(_server_samples(server))
    latency = stats.get("latency")
    if isinstance(latency, Mapping):
        samples.extend(_latency_samples(latency))
    http = stats.get("http")
    if isinstance(http, Mapping):
        samples.extend(_http_samples(http))
    service = stats.get("service")
    if isinstance(service, Mapping):
        if isinstance(service.get("router"), Mapping):
            samples.extend(_router_samples(service))
        else:
            samples.extend(_service_samples(service))
    faults = stats.get("faults")
    if isinstance(faults, Mapping):
        samples.extend(_fault_samples(faults))
    return samples


def _fault_samples(snapshot: Mapping[str, Any]) -> "list[Sample]":
    samples: list[Sample] = []
    crossings = snapshot.get("crossings")
    if isinstance(crossings, Mapping):
        for point, n in sorted(crossings.items()):
            v = _num(n)
            if v is not None:
                samples.append(counter_sample(
                    "repro_fault_crossings_total",
                    "lifetime crossings of each fault-injection point",
                    v, {"point": str(point)}))
    armed = snapshot.get("armed")
    if isinstance(armed, Mapping):
        for point, remaining in sorted(armed.items()):
            v = _num(remaining)
            if v is not None:
                samples.append(gauge_sample(
                    "repro_fault_armed",
                    "crossings remaining before an armed point fires",
                    v, {"point": str(point)}))
    return samples


def registry_from_stats(stats: Mapping[str, Any], *,
                        extra_samples: Iterable[Sample] = (),
                        ) -> MetricsRegistry:
    """A registry whose only collector adapts ``stats`` — the injectable-
    instance form, for callers composing scrapes programmatically."""
    registry = MetricsRegistry()
    extras = list(extra_samples)
    registry.register_collector(
        lambda: samples_from_stats(stats) + extras)
    return registry


def render_stats_metrics(stats: Mapping[str, Any], *,
                         extra_samples: Iterable[Sample] = ()) -> str:
    """Prometheus text for one stats snapshot (+ optional extra samples)."""
    return render_samples(samples_from_stats(stats) + list(extra_samples))
