"""Unified metrics core: thread-safe instruments behind a registry.

Every subsystem of this reproduction historically invented its own
observability — nine ad-hoc ``stats()`` dicts, two bespoke metric classes,
and counters scattered across server/router/service/store/pool/engine
objects.  This module is the common substrate those surfaces now report
through:

* **Instruments** — :class:`Counter` (monotonic), :class:`Gauge`
  (set/inc/dec), and :class:`Histogram` (fixed upper-bound buckets) — are
  *families*: declaring ``labelnames`` and calling :meth:`labels` yields
  one child per distinct label set, with **identity semantics** (the same
  label values always return the very same child object, regardless of
  keyword order).  Every mutation is lock-protected, so totals are exact
  under concurrent writers.
* **A registry** (:class:`MetricsRegistry`) owns families by name —
  re-requesting a name returns the existing family, requesting it as a
  different type raises — plus *collectors*: zero-argument callables
  invoked at scrape time that yield read-only :class:`Sample` rows.
  Collectors are how the pre-existing counters (``QueryServer`` admission,
  shard health dwell, service/store/engine caches, fault crossings) are
  re-pointed at the registry **without changing a single ``stats()`` dict
  shape**: the live snapshot each subsystem already produces is adapted
  into samples on demand (see :mod:`repro.obs.export`).
* **Prometheus text exposition** — :meth:`MetricsRegistry.render` emits
  the classic ``# HELP``/``# TYPE`` text format, stdlib-only.  All series
  in this codebase use the ``repro_`` prefix; see the README's
  "Observability" taxonomy table.

The process-default registry is :data:`REGISTRY`; everything also works
against an injected instance (and an injected ``clock``) for deterministic
tests.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from time import monotonic
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "get_registry", "Sample", "counter_sample", "gauge_sample",
    "histogram_sample", "render_samples",
]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram upper bounds (seconds-flavoured, Prometheus classic).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelPairs = "tuple[tuple[str, str], ...]"


def _check_metric_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_label_names(labelnames: Sequence[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for n in names:
        if not _LABEL_NAME_RE.match(n):
            raise ValueError(f"invalid label name {n!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names!r}")
    return names


def _normalize_labels(labels: "Mapping[str, Any] | Iterable[tuple[str, Any]]",
                      ) -> LabelPairs:
    pairs = labels.items() if isinstance(labels, Mapping) else labels
    return tuple((str(k), str(v)) for k, v in pairs)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_labels(pairs: LabelPairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    f = float(value)
    if f != f:
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


class Sample:
    """One read-only exposition row (or histogram row-group).

    Instruments produce these at collect time, and snapshot collectors
    produce them directly from existing ``stats()`` dicts.  ``kind`` is
    ``"counter"``/``"gauge"`` with a scalar ``value``, or ``"histogram"``
    with ``buckets`` (finite upper edge → **cumulative** count), ``sum``
    and ``count``.
    """

    __slots__ = ("name", "kind", "help", "labels", "value", "buckets",
                 "sum_value", "count")

    def __init__(self, name: str, kind: str, help_text: str,
                 labels: LabelPairs = (), *, value: float = 0.0,
                 buckets: "Sequence[tuple[float, int]] | None" = None,
                 sum_value: float = 0.0, count: int = 0):
        self.name = _check_metric_name(name)
        self.kind = kind
        self.help = help_text
        self.labels = labels
        self.value = value
        self.buckets = list(buckets) if buckets is not None else None
        self.sum_value = sum_value
        self.count = count


def counter_sample(name: str, help_text: str, value: float,
                   labels: "Mapping[str, Any] | Iterable[tuple[str, Any]]" = (),
                   ) -> Sample:
    return Sample(name, "counter", help_text, _normalize_labels(labels),
                  value=float(value))


def gauge_sample(name: str, help_text: str, value: float,
                 labels: "Mapping[str, Any] | Iterable[tuple[str, Any]]" = (),
                 ) -> Sample:
    return Sample(name, "gauge", help_text, _normalize_labels(labels),
                  value=float(value))


def histogram_sample(name: str, help_text: str, *,
                     buckets: "Sequence[tuple[float, int]]",
                     sum_value: float, count: int,
                     labels: "Mapping[str, Any] | Iterable[tuple[str, Any]]" = (),
                     ) -> Sample:
    """``buckets`` maps finite upper edges to **cumulative** counts; the
    ``+Inf`` bucket is implied by ``count`` and added at render time."""
    return Sample(name, "histogram", help_text, _normalize_labels(labels),
                  buckets=buckets, sum_value=float(sum_value), count=int(count))


# --------------------------------------------------------------------------- #
# Instrument children
# --------------------------------------------------------------------------- #
class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramChild:
    __slots__ = ("_lock", "_edges", "_counts", "_sum", "_count")

    def __init__(self, edges: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._edges = edges
        self._counts = [0] * (len(edges) + 1)    # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        v = float(value)
        i = bisect_left(self._edges, v)
        with self._lock:
            self._counts[i] += 1
            self._sum += v
            self._count += 1

    def snapshot(self) -> "tuple[list[tuple[float, int]], float, int]":
        with self._lock:
            cum, acc = [], 0
            for edge, c in zip(self._edges, self._counts):
                acc += c
                cum.append((edge, acc))
            return cum, self._sum, self._count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


# --------------------------------------------------------------------------- #
# Instrument families
# --------------------------------------------------------------------------- #
class _Family:
    """Shared family machinery: named children with identity semantics."""

    kind = ""

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()):
        self.name = _check_metric_name(name)
        self.help = help_text
        self.labelnames = _check_label_names(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labelvalues: Any):
        """The child for this label set (created once, then always the
        same object — label identity semantics)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}")
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _default_child(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} declares labels {list(self.labelnames)}; "
                f"call .labels(...) first")
        return self.labels()

    def _child_rows(self) -> "list[tuple[tuple[str, ...], Any]]":
        with self._lock:
            return sorted(self._children.items())

    def samples(self) -> list[Sample]:
        out = []
        for key, child in self._child_rows():
            pairs = tuple(zip(self.labelnames, key))
            out.append(self._sample_of(child, pairs))
        return out

    def _sample_of(self, child, pairs):  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Family):
    """Monotonically increasing family; ``inc()`` on labelless counters."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _sample_of(self, child: _CounterChild, pairs: LabelPairs) -> Sample:
        return Sample(self.name, self.kind, self.help, pairs,
                      value=child.value)


class Gauge(_Family):
    """Free-moving family: ``set``/``inc``/``dec``."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _sample_of(self, child: _GaugeChild, pairs: LabelPairs) -> Sample:
        return Sample(self.name, self.kind, self.help, pairs,
                      value=child.value)


class Histogram(_Family):
    """Fixed-bucket histogram family (upper-bound edges, +Inf implied)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = (), *,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError("buckets must be a non-empty strictly "
                             "increasing sequence")
        self.buckets = edges
        super().__init__(name, help_text, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def _sample_of(self, child: _HistogramChild, pairs: LabelPairs) -> Sample:
        cum, total, count = child.snapshot()
        return Sample(self.name, self.kind, self.help, pairs,
                      buckets=cum, sum_value=total, count=count)


_FAMILY_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


# --------------------------------------------------------------------------- #
# Registry + exposition
# --------------------------------------------------------------------------- #
class MetricsRegistry:
    """Owns instrument families and scrape-time collectors.

    ``clock`` is injectable purely for deterministic tests of
    time-derived series (it is handed to adapters that need "now", e.g.
    dwell-time collectors); production uses :func:`time.monotonic`.
    """

    def __init__(self, *, clock: Callable[[], float] = monotonic):
        self.clock = clock
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], Iterable[Sample]]] = []

    # -- families ------------------------------------------------------- #
    def _family(self, cls, name: str, help_text: str,
                labelnames: Sequence[str], **kwargs):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            family = cls(name, help_text, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (), *,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._family(Histogram, name, help_text, labelnames,
                            buckets=buckets)

    # -- collectors ----------------------------------------------------- #
    def register_collector(self, fn: Callable[[], Iterable[Sample]]) -> None:
        """``fn()`` is called at every scrape and yields :class:`Sample`
        rows — the snapshot-adapter hook that re-points existing
        ``stats()`` counters at this registry without reshaping them."""
        with self._lock:
            self._collectors.append(fn)

    def unregister_collector(self, fn: Callable[[], Iterable[Sample]]) -> None:
        with self._lock:
            try:
                self._collectors.remove(fn)
            except ValueError:
                pass

    # -- exposition ----------------------------------------------------- #
    def collect(self) -> list[Sample]:
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors)
        samples: list[Sample] = []
        for family in families:
            samples.extend(family.samples())
        for fn in collectors:
            samples.extend(fn())
        return samples

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        return render_samples(self.collect())


def render_samples(samples: Iterable[Sample]) -> str:
    """Prometheus text format: ``# HELP``/``# TYPE`` once per series name
    (first-seen order), then one line per (labels) child — histograms
    expand into ``_bucket``/``_sum``/``_count`` rows."""
    groups: dict[str, list[Sample]] = {}
    order: list[str] = []
    for s in samples:
        if s.name not in groups:
            groups[s.name] = []
            order.append(s.name)
        groups[s.name].append(s)
    lines: list[str] = []
    for name in order:
        rows = groups[name]
        kind = rows[0].kind
        help_text = rows[0].help.replace("\\", "\\\\").replace("\n", "\\n")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for s in rows:
            if s.kind == "histogram":
                assert s.buckets is not None
                for edge, cum in s.buckets:
                    pairs = s.labels + (("le", _format_value(edge)),)
                    lines.append(f"{name}_bucket{_format_labels(pairs)} {cum}")
                pairs = s.labels + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_format_labels(pairs)} {s.count}")
                lines.append(f"{name}_sum{_format_labels(s.labels)} "
                             f"{_format_value(s.sum_value)}")
                lines.append(f"{name}_count{_format_labels(s.labels)} {s.count}")
            else:
                lines.append(f"{name}{_format_labels(s.labels)} "
                             f"{_format_value(s.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-default registry.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
