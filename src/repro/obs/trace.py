"""Low-overhead tracing with Chrome trace-event export.

One tracer per process records **spans** — named intervals with arbitrary
key/value args — and exports them as Chrome trace-event JSON that loads
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Two recording styles:

* ``with trace.span("kernel", level=i, rotation=r): ...`` for code the
  tracer brackets itself, and
* ``trace.add_complete("pool-produce", elapsed_s, rotation=r)`` for
  durations something else already measured on ``perf_counter`` (the
  pipeline's ``PoolEvent`` timings, ``StreamTimeline`` copies, the
  server's per-request latency stamps) — the event is back-dated so it
  lands where it actually happened on the shared clock.  This is how the
  pre-existing timing surfaces are *absorbed* rather than re-measured.

Cross-process traces: a **trace id** is minted once at the client
(:func:`new_trace_id`) and carried in the optional ``"trace"`` field of
the wire frames; every hop stamps its own **span id**
(:func:`new_span_id`) and forwards it as the downstream ``parent``.  The
ids travel in span ``args`` (``trace`` / ``span`` / ``parent``), so one
user query through a router and N shards renders as a single correlated
trace even when the processes export separate files.

Overhead contract (pinned by ``benchmarks/test_obs_overhead.py``): when
tracing is disabled — the default — a span site costs one module-attribute
read plus returning a shared no-op singleton, a few tens of nanoseconds
and **zero allocation**.  Hot loops can skip even that with an explicit
``if trace.enabled:`` guard.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from time import perf_counter
from typing import Any

__all__ = [
    "enabled", "enable", "disable", "is_enabled", "span", "add_complete",
    "add_instant", "new_trace_id", "new_span_id", "export", "drain",
    "event_count",
]

#: Module-level fast-path flag.  Read it as ``trace.enabled`` (attribute
#: access on the module), never ``from ... import enabled`` — a from-import
#: copies the value and goes stale.
enabled = False

_lock = threading.Lock()
_events: list[dict[str, Any]] = []
_epoch = 0.0                       # perf_counter() at enable() time
_tids: dict[int, int] = {}         # threading.get_ident() -> small tid
_span_counter = 0


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP = _NoopSpan()


def _tid() -> int:
    ident = threading.get_ident()
    tid = _tids.get(ident)
    if tid is None:
        # Raced registration is harmless: both writers compute the same
        # mapping under the lock.
        with _lock:
            tid = _tids.setdefault(ident, len(_tids) + 1)
            name = threading.current_thread().name
            _events.append({
                "name": "thread_name", "ph": "M", "pid": os.getpid(),
                "tid": tid, "args": {"name": name},
            })
    return tid


class _Span:
    """A live span: records a complete ``"X"`` event on exit."""

    __slots__ = ("name", "args", "_start")

    def __init__(self, name: str, args: dict[str, Any]):
        self.name = name
        self.args = args
        self._start = perf_counter()

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        end = perf_counter()
        if not enabled:          # disabled mid-span: drop silently
            return
        if exc_type is not None:
            self.args["error"] = getattr(exc_type, "__name__", str(exc_type))
        event = {
            "name": self.name, "ph": "X", "pid": os.getpid(), "tid": _tid(),
            "ts": (self._start - _epoch) * 1e6,
            "dur": (end - self._start) * 1e6,
            "args": self.args,
        }
        with _lock:
            _events.append(event)


def span(name: str, **args: Any) -> "_Span | _NoopSpan":
    """A context manager bracketing ``name``; no-op singleton when disabled."""
    if not enabled:
        return _NOOP
    return _Span(name, args)


def add_complete(name: str, duration_s: float, **args: Any) -> None:
    """Record an already-measured interval that *ended just now*.

    ``duration_s`` must come from ``perf_counter`` differences — the event
    is back-dated by that amount so it aligns with live spans on the same
    clock.
    """
    if not enabled:
        return
    end = perf_counter()
    event = {
        "name": name, "ph": "X", "pid": os.getpid(), "tid": _tid(),
        "ts": (end - _epoch - duration_s) * 1e6,
        "dur": duration_s * 1e6,
        "args": args,
    }
    with _lock:
        _events.append(event)


def add_instant(name: str, **args: Any) -> None:
    """Record a zero-duration marker (simulated transfers, boundaries)."""
    if not enabled:
        return
    event = {
        "name": name, "ph": "X", "pid": os.getpid(), "tid": _tid(),
        "ts": (perf_counter() - _epoch) * 1e6, "dur": 0.0,
        "args": args,
    }
    with _lock:
        _events.append(event)


# --------------------------------------------------------------------------- #
# Ids
# --------------------------------------------------------------------------- #
def new_trace_id() -> str:
    """A fresh request-scoped trace id (minted once, at the client)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A process-unique span id, cheap and ordered within the process."""
    global _span_counter
    with _lock:
        _span_counter += 1
        return f"{os.getpid():x}.{_span_counter}"


# --------------------------------------------------------------------------- #
# Lifecycle + export
# --------------------------------------------------------------------------- #
def enable() -> None:
    """Turn recording on; resets the event buffer and the clock epoch."""
    global enabled, _epoch
    with _lock:
        _events.clear()
        _tids.clear()
    _epoch = perf_counter()
    enabled = True


def disable() -> None:
    global enabled
    enabled = False


def is_enabled() -> bool:
    return enabled


def event_count() -> int:
    with _lock:
        return len(_events)


def drain() -> list[dict[str, Any]]:
    """Remove and return all buffered events (metadata events included)."""
    with _lock:
        out = list(_events)
        _events.clear()
        _tids.clear()
    return out


def export(path: "str | os.PathLike[str]", *, drain_events: bool = True) -> int:
    """Write buffered events as Chrome trace-event JSON; returns the count.

    The file is the ``{"traceEvents": [...]}`` envelope Perfetto expects,
    events sorted by ``ts`` (metadata first).
    """
    if drain_events:
        events = drain()
    else:
        with _lock:
            events = list(_events)
    events.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0.0)))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    tmp = f"{os.fspath(path)}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(tmp, os.fspath(path))
    return sum(1 for e in events if e.get("ph") != "M")
