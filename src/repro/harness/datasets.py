"""Dataset registry: scaled-down synthetic twins of the paper's Table 2 graphs.

Each entry pairs the paper's graph with a generator recipe that reproduces
its qualitative structure (degree skew, density, community structure) at a
size a single CPU core can embed in seconds.  The registry is what every
benchmark iterates over, so the mapping from paper graph -> twin is recorded
in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..graph.csr import CSRGraph
from ..graph import generators as gen

__all__ = ["DatasetSpec", "MEDIUM_DATASETS", "LARGE_DATASETS", "ALL_DATASETS",
           "load_dataset", "dataset_names", "paper_table2_rows"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 2 row and the recipe for its synthetic twin."""

    name: str                      # paper graph name
    paper_vertices: int
    paper_edges: int
    paper_density: float
    scale: str                     # "medium" or "large"
    builder: Callable[[int], CSRGraph]
    description: str = ""

    def build(self, seed: int = 0) -> CSRGraph:
        graph = self.builder(seed)
        return CSRGraph(
            xadj=graph.xadj, adj=graph.adj, num_vertices=graph.num_vertices,
            undirected=graph.undirected, name=self.name,
        )


def _social_twin(name: str, n: int, intra_degree: int, *, hub_fraction: float = 0.005,
                 inter_fraction: float = 0.03, hub_reach: float = 0.08):
    """Build a twin factory: community-structured, hub-bearing social graph.

    ``intra_degree`` tracks the relative density of the paper's graph (dense
    graphs like com-orkut get a higher intra-community degree), ``n`` the
    relative |V| ordering while staying laptop-sized.
    """

    def build(seed: int) -> CSRGraph:
        return gen.social_community(
            n, intra_degree=intra_degree, inter_fraction=inter_fraction,
            hub_fraction=hub_fraction, hub_reach=hub_reach, seed=seed, name=name,
        )

    return build


# Medium-scale twins: ~1k–2k vertices, intra-community degree tracks the
# paper's density column (com-amazon 2.76 ... com-orkut 38.14).
_dblp_twin = _social_twin("com-dblp", 1000, 6)
_amazon_twin = _social_twin("com-amazon", 1000, 6, inter_fraction=0.02)
_youtube_twin = _social_twin("youtube", 1400, 8, hub_fraction=0.008)
_pokec_twin = _social_twin("soc-pokec", 1400, 18)
_wiki_twin = _social_twin("wiki-topcats", 1400, 16, hub_fraction=0.01)
_orkut_twin = _social_twin("com-orkut", 1600, 28)
_lj_twin = _social_twin("com-lj", 1600, 10)
_livejournal_twin = _social_twin("soc-LiveJournal", 1800, 14)

# Large-scale twins: bigger |V| so that, with the shrunken simulated-device
# memory used by the Table 7 / Figure 3 benches, the embedding matrix does
# not fit and the partitioned engine is exercised.
_hyperlink_twin = _social_twin("hyperlink2012", 3600, 14, hub_fraction=0.004)
_sinaweibo_twin = _social_twin("soc-sinaweibo", 4200, 6, hub_fraction=0.004)
_twitter_twin = _social_twin("twitter_rv", 3800, 24, hub_fraction=0.006)
_friendster_twin = _social_twin("com-friendster", 4800, 20, hub_fraction=0.004)


MEDIUM_DATASETS: list[DatasetSpec] = [
    DatasetSpec("com-dblp", 317_080, 1_049_866, 3.31, "medium", _dblp_twin,
                "co-authorship network; clustered, moderate skew"),
    DatasetSpec("com-amazon", 334_863, 925_872, 2.76, "medium", _amazon_twin,
                "co-purchase network; sparse, clustered"),
    DatasetSpec("youtube", 1_138_499, 4_945_382, 4.34, "medium", _youtube_twin,
                "social network; heavy-tailed degrees"),
    DatasetSpec("soc-pokec", 1_632_803, 30_622_564, 18.75, "medium", _pokec_twin,
                "dense social network"),
    DatasetSpec("wiki-topcats", 1_791_489, 28_511_807, 15.92, "medium", _wiki_twin,
                "hyperlink graph"),
    DatasetSpec("com-orkut", 3_072_441, 117_185_083, 38.14, "medium", _orkut_twin,
                "densest medium graph"),
    DatasetSpec("com-lj", 3_997_962, 34_681_189, 8.67, "medium", _lj_twin,
                "LiveJournal community graph"),
    DatasetSpec("soc-LiveJournal", 4_847_571, 68_993_773, 14.23, "medium", _livejournal_twin,
                "LiveJournal friendship graph"),
]

LARGE_DATASETS: list[DatasetSpec] = [
    DatasetSpec("hyperlink2012", 39_497_204, 623_056_313, 15.77, "large", _hyperlink_twin,
                "web hyperlink graph"),
    DatasetSpec("soc-sinaweibo", 58_655_849, 261_321_071, 4.46, "large", _sinaweibo_twin,
                "microblog follower graph; sparse"),
    DatasetSpec("twitter_rv", 41_652_230, 1_468_365_182, 35.25, "large", _twitter_twin,
                "twitter follower graph; dense"),
    DatasetSpec("com-friendster", 65_608_366, 1_806_067_135, 27.53, "large", _friendster_twin,
                "largest graph in the paper"),
]

ALL_DATASETS: list[DatasetSpec] = MEDIUM_DATASETS + LARGE_DATASETS

_BY_NAME = {spec.name: spec for spec in ALL_DATASETS}


def dataset_names(scale: str | None = None) -> list[str]:
    """Names of registered datasets, optionally filtered by scale."""
    return [s.name for s in ALL_DATASETS if scale is None or s.scale == scale]


def load_dataset(name: str, *, seed: int = 0) -> CSRGraph:
    """Build the synthetic twin of a paper graph by name."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(_BY_NAME)}")
    return _BY_NAME[name].build(seed=seed)


def paper_table2_rows() -> list[dict[str, object]]:
    """Rows of the paper's Table 2 side by side with the twin's measured stats."""
    from ..graph.stats import compute_stats

    rows: list[dict[str, object]] = []
    for spec in ALL_DATASETS:
        twin = spec.build()
        stats = compute_stats(twin)
        rows.append({
            "Graph": spec.name,
            "paper |V|": spec.paper_vertices,
            "paper |E|": spec.paper_edges,
            "paper density": spec.paper_density,
            "twin |V|": stats.num_vertices,
            "twin |E|": stats.num_edges,
            "twin density": round(stats.density, 2),
            "scale": spec.scale,
        })
    return rows
