"""Benchmark harness: dataset registry, experiment runner, table formatting."""

from .datasets import (
    ALL_DATASETS,
    LARGE_DATASETS,
    MEDIUM_DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    paper_table2_rows,
)
from .runner import ExperimentRunner, ToolRun, default_tools
from .tables import format_table, print_table

__all__ = [
    "ALL_DATASETS",
    "LARGE_DATASETS",
    "MEDIUM_DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "paper_table2_rows",
    "ExperimentRunner",
    "ToolRun",
    "default_tools",
    "format_table",
    "print_table",
]
