"""Experiment runner: ties datasets, the tool registry, and link prediction together.

The runner is the workhorse behind the Table 6 / Table 7 benchmarks: for a
given graph it runs every requested tool (GOSH in its Table 3 configurations,
VERSE, MILE, GraphVite-like), evaluates link prediction, and emits rows in
the paper's format (tool, time, speedup vs VERSE, AUCROC).

Tools are resolved exclusively through the :mod:`repro.api` registry:
:func:`default_tools` instantiates every registered tool, so a backend added
with ``repro.api.register_tool`` shows up in the suite automatically.  The
runner accepts both :class:`~repro.api.protocol.EmbeddingTool` instances and
bare ``graph -> embedding`` callables as tool values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable

import numpy as np

from ..api.protocol import EmbeddingTool
from ..api.registry import available_tools, get_tool
from ..api.result import EmbeddingResult
from ..eval.link_prediction import evaluate_embedding
from ..eval.split import train_test_split
from ..gpu.device import DeviceMemoryError, SimulatedDevice
from ..graph.csr import CSRGraph

__all__ = ["ToolRun", "ExperimentRunner", "default_tools"]


@dataclass
class ToolRun:
    """One (graph, tool) result row."""

    graph: str
    tool: str
    seconds: float
    auc: float | None
    speedup_vs_baseline: float | None = None
    error: str | None = None
    #: Timings/stats envelope from the tool; the embedding matrix and the
    #: backend-native raw result are stripped so long sweeps stay lightweight.
    result: EmbeddingResult | None = None

    def as_row(self) -> dict[str, object]:
        return {
            "Graph": self.graph,
            "Algorithm": self.tool,
            "Time (s)": round(self.seconds, 3),
            "Speedup": "-" if self.speedup_vs_baseline is None else f"{self.speedup_vs_baseline:.2f}x",
            "AUCROC (%)": "-" if self.auc is None else round(100 * self.auc, 2),
            "Note": self.error or "",
        }


#: A bare embedder maps a training graph to a (|V|, d) embedding matrix.
EmbedderFactory = Callable[[CSRGraph], np.ndarray]


def default_tools(*, dim: int = 32, epoch_scale: float = 0.05,
                  device: SimulatedDevice | None = None,
                  seed: int = 0) -> dict[str, EmbeddingTool]:
    """The registered tool suite, scaled for laptop-sized twins.

    A pure registry query: every tool listed by
    :func:`repro.api.available_tools` is instantiated with the given options
    and keyed by its paper-table display name (``Verse``, ``Gosh-fast``, …).
    ``epoch_scale`` multiplies every tool's epoch budget equally so relative
    comparisons stay fair while wall-clock stays small.
    """
    tools: dict[str, EmbeddingTool] = {}
    for name in available_tools():
        tool = get_tool(name, dim=dim, epoch_scale=epoch_scale, device=device, seed=seed)
        # Display names are the table labels but are not guaranteed unique
        # across registrations; fall back to the (unique) registry name so no
        # tool silently drops out of the suite.
        key = tool.display_name if tool.display_name not in tools else name
        tools[key] = tool
    return tools


@dataclass
class ExperimentRunner:
    """Runs a tool suite over graphs and collects paper-style rows.

    ``tools`` maps display names to :class:`EmbeddingTool` instances or bare
    callables; when omitted, the full registry suite (:func:`default_tools`)
    is used.
    """

    tools: dict[str, EmbeddingTool | EmbedderFactory] | None = None
    baseline_tool: str = "Verse"
    classifier: str = "logistic"
    seed: int = 0
    results: list[ToolRun] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.tools is None:
            self.tools = default_tools(seed=self.seed)

    def run_graph(self, graph: CSRGraph, *, tools: list[str] | None = None) -> list[ToolRun]:
        """Run every tool on one graph and evaluate link prediction."""
        split = train_test_split(graph, seed=self.seed)
        selected = tools or list(self.tools)
        runs: list[ToolRun] = []
        for name in selected:
            embedder = self.tools[name]
            t0 = perf_counter()
            tool_result: EmbeddingResult | None = None
            try:
                if isinstance(embedder, EmbeddingTool):
                    full_result = embedder.embed(split.train_graph)
                    embedding = full_result.embedding
                    tool_result = replace(full_result,
                                          embedding=np.empty((0, 0), dtype=np.float32),
                                          raw=None)
                else:
                    embedding = embedder(split.train_graph)
                seconds = perf_counter() - t0
                result = evaluate_embedding(embedding, split, classifier=self.classifier,
                                             seed=self.seed, embed_seconds=seconds)
                runs.append(ToolRun(graph=graph.name, tool=name, seconds=seconds,
                                    auc=result.auc, result=tool_result))
            except DeviceMemoryError as exc:
                runs.append(ToolRun(graph=graph.name, tool=name,
                                    seconds=perf_counter() - t0, auc=None,
                                    error=f"out of device memory: {exc}"))
            except TimeoutError as exc:  # pragma: no cover - defensive
                runs.append(ToolRun(graph=graph.name, tool=name,
                                    seconds=perf_counter() - t0, auc=None, error=str(exc)))
        self._attach_speedups(runs)
        self.results.extend(runs)
        return runs

    def _attach_speedups(self, runs: list[ToolRun]) -> None:
        baseline = next((r for r in runs if r.tool == self.baseline_tool and r.error is None), None)
        if baseline is None or baseline.seconds <= 0:
            return
        for run in runs:
            if run.error is None and run.seconds > 0:
                run.speedup_vs_baseline = baseline.seconds / run.seconds

    def rows(self) -> list[dict[str, object]]:
        return [r.as_row() for r in self.results]
