"""Experiment runner: ties datasets, tools, and the link-prediction pipeline together.

The runner is the workhorse behind the Table 6 / Table 7 benchmarks: for a
given graph it runs every requested tool (GOSH in its Table 3 configurations,
VERSE, MILE, GraphVite-like), evaluates link prediction, and emits rows in
the paper's format (tool, time, speedup vs VERSE, AUCROC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

import numpy as np

from ..baselines.graphvite_like import GraphViteConfig, graphvite_embed
from ..baselines.mile import MileConfig, mile_embed
from ..embedding.config import FAST, NO_COARSE, NORMAL, SLOW, GoshConfig
from ..embedding.gosh import GoshEmbedder
from ..embedding.verse import VerseConfig, verse_embed
from ..eval.link_prediction import evaluate_embedding
from ..eval.split import train_test_split
from ..gpu.device import DeviceMemoryError, SimulatedDevice
from ..graph.csr import CSRGraph

__all__ = ["ToolRun", "ExperimentRunner", "default_tools"]


@dataclass
class ToolRun:
    """One (graph, tool) result row."""

    graph: str
    tool: str
    seconds: float
    auc: float | None
    speedup_vs_baseline: float | None = None
    error: str | None = None

    def as_row(self) -> dict[str, object]:
        return {
            "Graph": self.graph,
            "Algorithm": self.tool,
            "Time (s)": round(self.seconds, 3),
            "Speedup": "-" if self.speedup_vs_baseline is None else f"{self.speedup_vs_baseline:.2f}x",
            "AUCROC (%)": "-" if self.auc is None else round(100 * self.auc, 2),
            "Note": self.error or "",
        }


EmbedderFactory = Callable[[CSRGraph], np.ndarray]


def default_tools(*, dim: int = 32, epoch_scale: float = 0.05,
                  device: SimulatedDevice | None = None,
                  seed: int = 0) -> dict[str, EmbedderFactory]:
    """The Table 6 tool suite, scaled for laptop-sized twins.

    ``epoch_scale`` multiplies every tool's epoch budget equally so relative
    comparisons stay fair while wall-clock stays small.
    """
    device = device or SimulatedDevice()

    def _gosh(config: GoshConfig) -> EmbedderFactory:
        cfg = config.scaled(epoch_scale, dim=dim).with_(seed=seed)

        def run(graph: CSRGraph) -> np.ndarray:
            return GoshEmbedder(cfg, device=device).embed(graph).embedding

        return run

    def _verse(graph: CSRGraph) -> np.ndarray:
        # The paper runs VERSE with PPR similarity and lr = 0.0025 for 600+
        # full-size epochs.  At twin scale that budget is far too small for
        # the diffuse PPR walks to converge, so the scaled suite runs VERSE
        # with its adjacency similarity and a learning rate matched to the
        # other tools — keeping it the quality reference it is in Table 6.
        cfg = VerseConfig(dim=dim, epochs=max(1, int(600 * epoch_scale)),
                          learning_rate=0.045, similarity="adjacency", seed=seed)
        return verse_embed(graph, cfg).embedding

    def _mile(graph: CSRGraph) -> np.ndarray:
        cfg = MileConfig(dim=dim, base_epochs=max(1, int(200 * epoch_scale)), seed=seed)
        return mile_embed(graph, cfg).embedding

    def _graphvite(graph: CSRGraph) -> np.ndarray:
        cfg = GraphViteConfig(dim=dim, epochs=max(1, int(600 * epoch_scale)),
                              learning_rate=0.05, seed=seed)
        return graphvite_embed(graph, cfg, device=device).embedding

    return {
        "Verse": _verse,
        "Mile": _mile,
        "Graphvite": _graphvite,
        "Gosh-fast": _gosh(FAST),
        "Gosh-normal": _gosh(NORMAL),
        "Gosh-slow": _gosh(SLOW),
        "Gosh-NoCoarse": _gosh(NO_COARSE),
    }


@dataclass
class ExperimentRunner:
    """Runs a tool suite over graphs and collects paper-style rows."""

    tools: dict[str, EmbedderFactory]
    baseline_tool: str = "Verse"
    classifier: str = "logistic"
    seed: int = 0
    results: list[ToolRun] = field(default_factory=list)

    def run_graph(self, graph: CSRGraph, *, tools: list[str] | None = None) -> list[ToolRun]:
        """Run every tool on one graph and evaluate link prediction."""
        split = train_test_split(graph, seed=self.seed)
        selected = tools or list(self.tools)
        runs: list[ToolRun] = []
        for name in selected:
            embedder = self.tools[name]
            t0 = perf_counter()
            try:
                embedding = embedder(split.train_graph)
                seconds = perf_counter() - t0
                result = evaluate_embedding(embedding, split, classifier=self.classifier,
                                             seed=self.seed, embed_seconds=seconds)
                runs.append(ToolRun(graph=graph.name, tool=name, seconds=seconds,
                                    auc=result.auc))
            except DeviceMemoryError as exc:
                runs.append(ToolRun(graph=graph.name, tool=name,
                                    seconds=perf_counter() - t0, auc=None,
                                    error=f"out of device memory: {exc}"))
            except TimeoutError as exc:  # pragma: no cover - defensive
                runs.append(ToolRun(graph=graph.name, tool=name,
                                    seconds=perf_counter() - t0, auc=None, error=str(exc)))
        self._attach_speedups(runs)
        self.results.extend(runs)
        return runs

    def _attach_speedups(self, runs: list[ToolRun]) -> None:
        baseline = next((r for r in runs if r.tool == self.baseline_tool and r.error is None), None)
        if baseline is None or baseline.seconds <= 0:
            return
        for run in runs:
            if run.error is None and run.seconds > 0:
                run.speedup_vs_baseline = baseline.seconds / run.seconds

    def rows(self) -> list[dict[str, object]]:
        return [r.as_row() for r in self.results]
