"""Paper-style table formatting for the benchmark harness.

Every benchmark prints its results as an ASCII table whose columns match the
corresponding table/figure of the paper, so EXPERIMENTS.md can be filled in
by copying the output.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["format_table", "print_table"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_table(rows: Iterable[Mapping[str, object]], *, title: str | None = None,
                 columns: list[str] | None = None) -> str:
    """Render a list of dict rows as a fixed-width ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    rendered: list[list[str]] = []
    for row in rows:
        line = [_cell(row.get(c, "")) for c in columns]
        rendered.append(line)
        for c, cell in zip(columns, line):
            widths[c] = max(widths[c], len(cell))
    sep = "-+-".join("-" * widths[c] for c in columns)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    body = "\n".join(" | ".join(cell.ljust(widths[c]) for c, cell in zip(columns, line))
                     for line in rendered)
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, sep, body])
    return "\n".join(parts)


def print_table(rows: Iterable[Mapping[str, object]], *, title: str | None = None,
                columns: list[str] | None = None) -> None:
    print("\n" + format_table(rows, title=title, columns=columns) + "\n")
