"""Load-generation harness for the resident serving subsystem.

Spawns N concurrent clients (closed- or open-loop) against a
:class:`repro.serve.QueryServer`, stamps every request at creation, and
reports p50/p95/p99 latency, queries/s, rejection rate, and the queue-wait
share of server time — the traffic-scale measurement methodology of the
scalability testbeds in PAPERS.md.  See :mod:`repro.loadgen.harness`.
"""

from .harness import LoadConfig, LoadGenerator, LoadReport

__all__ = ["LoadConfig", "LoadGenerator", "LoadReport"]
