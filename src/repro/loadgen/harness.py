"""Traffic-scale load harness for the resident query server.

Methodology follows the scalability-testbed idiom from the related WSN work
(PAPERS.md): **stamp every request at creation, measure delay as
receive − create on one clock, and characterize the latency distribution
and throughput as the concurrent-client count grows.**  The generator and
its clients share the process's monotonic clock, so end-to-end latency
needs no clock synchronisation; the server's per-reply ``timing`` breakdown
(queue-wait vs. service time, stamped on the server's clock) attributes
where that latency went.

Two canonical modes:

* **closed loop** — each of N clients keeps exactly one request in flight
  (send → await reply → send).  Throughput is demand-limited by N; this is
  the classic "N concurrent users" scaling curve.
* **open loop** — each client fires requests on a fixed schedule
  (``rate_per_client``/s) regardless of completions, the arrival pattern of
  independent internet users.  Under overload an open-loop run keeps
  offering load, so admission-control rejections become visible instead of
  being absorbed by client back-pressure.

:class:`LoadGenerator` holds every sample (it is a harness, not a resident
process) and reports exact percentiles; :meth:`LoadReport.as_json` is the
payload recorded to ``bench_results/serve_load.json`` by the perf-smoke
benchmark so the SLO trajectory joins the repo's other perf artifacts.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from time import monotonic
from typing import Any

import numpy as np

from ..serve.client import parse_address
from ..serve.protocol import MAX_FRAME_BYTES, encode_frame

__all__ = ["LoadConfig", "LoadReport", "LoadGenerator"]


@dataclass
class LoadConfig:
    """One load-generation run against one or more running servers.

    ``address`` is a single ``"host:port"`` / ``"unix:<path>"`` string or a
    sequence of them; with several, clients are assigned round-robin and the
    run produces one merged report with a per-address breakdown — the shape
    needed to drive a sharded deployment (router + shards, or several
    routers) as one traffic source.
    """

    address: "str | tuple[str, ...] | list[str]"
    clients: int = 4
    mode: str = "closed"              # "closed" | "open"
    duration_s: float = 2.0
    requests_per_client: "int | None" = None   # closed loop: stop after N sends
    rate_per_client: float = 50.0     # open loop: arrivals per second per client
    k: int = 10
    num_vertices: int = 100           # query ids drawn uniformly from [0, this)
    tool: "str | None" = None         # None: rely on the server defaults
    graph: "str | None" = None
    seed: int = 0
    timeout_s: float = 30.0           # per-reply wait bound (closed loop)
    drain_grace_s: float = 5.0        # open loop: wait for stragglers after sending
    reject_backoff_s: float = 0.002   # closed loop: pause after an overload reply

    def __post_init__(self) -> None:
        if isinstance(self.address, str):
            self.address = (self.address,)
        else:
            self.address = tuple(self.address)
        if not self.address or not all(isinstance(a, str) and a for a in self.address):
            raise ValueError("address must be one or more non-empty address strings")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.mode == "open" and self.rate_per_client <= 0:
            raise ValueError("open-loop mode needs rate_per_client > 0")
        if self.num_vertices < 1:
            raise ValueError("num_vertices must be >= 1")


@dataclass
class LoadReport:
    """Aggregated result of one run: counts, throughput, latency quantiles.

    With several target addresses the top-level numbers are the *merged*
    view (all clients, one clock), and ``per_address`` breaks the same
    counters + latency quantiles down by target.
    """

    mode: str
    clients: int
    elapsed_s: float
    sent: int
    answered: int
    rejected: int
    errors: int
    timeouts: int
    disconnects: int
    queries_per_s: float
    rejection_rate: float             # rejected / replies received
    latency_ms: dict[str, float]      # create -> reply receipt, client clock
    queue_wait_ms: dict[str, float]   # server-stamped admission wait
    service_ms: dict[str, float]      # server-stamped batch service time
    queue_wait_share: float           # sum(queue_wait) / sum(server total)
    addresses: list[str] = field(default_factory=list)
    per_address: dict[str, dict[str, Any]] = field(default_factory=dict)

    def as_json(self) -> dict[str, Any]:
        return {
            "mode": self.mode, "clients": self.clients,
            "elapsed_s": round(self.elapsed_s, 3),
            "sent": self.sent, "answered": self.answered,
            "rejected": self.rejected, "errors": self.errors,
            "timeouts": self.timeouts, "disconnects": self.disconnects,
            "queries_per_s": round(self.queries_per_s, 1),
            "rejection_rate": round(self.rejection_rate, 4),
            "latency_ms": self.latency_ms,
            "queue_wait_ms": self.queue_wait_ms,
            "service_ms": self.service_ms,
            "queue_wait_share": round(self.queue_wait_share, 4),
            "addresses": list(self.addresses),
            "per_address": self.per_address,
        }

    def summary_lines(self) -> list[str]:
        lat, qw = self.latency_ms, self.queue_wait_ms
        lines = [
            f"{self.mode}-loop, {self.clients} client(s), {self.elapsed_s:.2f}s: "
            f"{self.sent} sent, {self.answered} answered, {self.rejected} rejected, "
            f"{self.errors} errors, {self.timeouts} timeouts",
            f"throughput: {self.queries_per_s:,.1f} queries/s "
            f"(rejection rate {100 * self.rejection_rate:.2f}%)",
            f"latency: p50={lat.get('p50', 0):.2f}ms p95={lat.get('p95', 0):.2f}ms "
            f"p99={lat.get('p99', 0):.2f}ms max={lat.get('max', 0):.2f}ms",
            f"queue wait: p50={qw.get('p50', 0):.2f}ms p99={qw.get('p99', 0):.2f}ms "
            f"({100 * self.queue_wait_share:.1f}% of server time)",
        ]
        if len(self.addresses) > 1:
            for address in self.addresses:
                sub = self.per_address.get(address, {})
                sub_lat = sub.get("latency_ms", {})
                lines.append(
                    f"  {address}: {sub.get('answered', 0)} answered, "
                    f"{sub.get('queries_per_s', 0):,.1f} q/s, "
                    f"p99={sub_lat.get('p99', 0):.2f}ms")
        return lines


def _quantiles(samples_s: list[float]) -> dict[str, float]:
    """Exact client-side percentiles, reported in milliseconds."""
    if not samples_s:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "max": 0.0}
    arr = np.asarray(samples_s, dtype=np.float64) * 1e3
    p50, p95, p99 = (float(v) for v in np.percentile(arr, [50, 95, 99]))
    return {"count": int(arr.size), "mean": round(float(arr.mean()), 3),
            "p50": round(p50, 3), "p95": round(p95, 3), "p99": round(p99, 3),
            "max": round(float(arr.max()), 3)}


@dataclass
class _Tally:
    """Mutable per-run accumulator shared by the client coroutines."""

    sent: int = 0
    rejected: int = 0
    errors: int = 0
    timeouts: int = 0
    disconnects: int = 0
    latencies: list[float] = field(default_factory=list)
    queue_waits: list[float] = field(default_factory=list)
    services: list[float] = field(default_factory=list)
    server_totals: list[float] = field(default_factory=list)

    def record_reply(self, reply: dict[str, Any], latency_s: float) -> None:
        if reply.get("ok"):
            self.latencies.append(latency_s)
            timing = reply.get("timing") or {}
            if "queue_wait_s" in timing:
                self.queue_waits.append(float(timing["queue_wait_s"]))
                self.services.append(float(timing["service_s"]))
                self.server_totals.append(float(timing["total_s"]))
        elif reply.get("code") in ("overloaded", "shutting-down"):
            self.rejected += 1
        else:
            self.errors += 1


class LoadGenerator:
    """Spawn N concurrent clients against a server and measure the answers."""

    def __init__(self, config: LoadConfig):
        self.config = config

    # ------------------------------------------------------------------ #
    def run(self) -> LoadReport:
        """Execute the configured run (blocking; owns its event loop)."""
        return asyncio.run(self._run())

    async def _run(self) -> LoadReport:
        cfg = self.config
        addresses = list(cfg.address)
        # One tally per target: clients are assigned round-robin, so the
        # per-address breakdown shows whether a sharded deployment's load
        # lands evenly.  The merged view sums them on the shared clock.
        tallies = {address: _Tally() for address in addresses}
        start = monotonic()
        deadline = start + cfg.duration_s
        client = (self._closed_client if cfg.mode == "closed"
                  else self._open_client)
        await asyncio.gather(*(
            client(i, deadline, tallies[addresses[i % len(addresses)]],
                   addresses[i % len(addresses)])
            for i in range(cfg.clients)))
        elapsed = monotonic() - start
        merged = _Tally()
        per_address: dict[str, dict[str, Any]] = {}
        for address in addresses:
            tally = tallies[address]
            merged.sent += tally.sent
            merged.rejected += tally.rejected
            merged.errors += tally.errors
            merged.timeouts += tally.timeouts
            merged.disconnects += tally.disconnects
            merged.latencies.extend(tally.latencies)
            merged.queue_waits.extend(tally.queue_waits)
            merged.services.extend(tally.services)
            merged.server_totals.extend(tally.server_totals)
            sub_replies = len(tally.latencies) + tally.rejected + tally.errors
            per_address[address] = {
                "sent": tally.sent, "answered": len(tally.latencies),
                "rejected": tally.rejected, "errors": tally.errors,
                "timeouts": tally.timeouts, "disconnects": tally.disconnects,
                "queries_per_s": round(
                    len(tally.latencies) / elapsed if elapsed > 0 else 0.0, 1),
                "rejection_rate": round(
                    tally.rejected / sub_replies if sub_replies else 0.0, 4),
                "latency_ms": _quantiles(tally.latencies),
            }
        replies = len(merged.latencies) + merged.rejected + merged.errors
        total_server = sum(merged.server_totals)
        return LoadReport(
            mode=cfg.mode, clients=cfg.clients, elapsed_s=elapsed,
            sent=merged.sent, answered=len(merged.latencies),
            rejected=merged.rejected, errors=merged.errors,
            timeouts=merged.timeouts, disconnects=merged.disconnects,
            queries_per_s=len(merged.latencies) / elapsed if elapsed > 0 else 0.0,
            rejection_rate=merged.rejected / replies if replies else 0.0,
            latency_ms=_quantiles(merged.latencies),
            queue_wait_ms=_quantiles(merged.queue_waits),
            service_ms=_quantiles(merged.services),
            queue_wait_share=(sum(merged.queue_waits) / total_server
                              if total_server > 0 else 0.0),
            addresses=addresses,
            per_address=per_address,
        )

    # ------------------------------------------------------------------ #
    async def _connect(self, address: str,
                       ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        # Connect establishment shares the per-request timeout discipline: a
        # blackholed address must fail the client within timeout_s, not hang
        # the whole run on an unbounded open_connection.
        kind, target = parse_address(address)
        if kind == "unix":
            opening = asyncio.open_unix_connection(target, limit=MAX_FRAME_BYTES)
        else:
            host, port = target
            opening = asyncio.open_connection(host, port, limit=MAX_FRAME_BYTES)
        return await asyncio.wait_for(opening, timeout=self.config.timeout_s)

    def _frame(self, rng: np.random.Generator, request_id: str,
               created: float) -> bytes:
        cfg = self.config
        frame: dict[str, Any] = {
            "id": request_id, "verb": "query", "k": cfg.k, "created": created,
            "vertices": [int(rng.integers(cfg.num_vertices))],
        }
        if cfg.tool is not None:
            frame["tool"] = cfg.tool
        if cfg.graph is not None:
            frame["graph"] = cfg.graph
        return encode_frame(frame)

    async def _closed_client(self, index: int, deadline: float,
                             tally: _Tally, address: str) -> None:
        """One request in flight at a time until the deadline/request cap.

        ``timeout_s`` is a wall-clock deadline per request: the write drain
        *and* the reply wait share one budget starting at ``created``, so a
        server that accepts the connection and then blackholes (never reads,
        never replies) fails the request as a timeout within ``timeout_s``
        instead of hanging the client on an unbounded ``drain()``.
        """
        cfg = self.config
        rng = np.random.default_rng((cfg.seed, index))
        try:
            reader, writer = await self._connect(address)
        except (asyncio.TimeoutError, TimeoutError):
            tally.timeouts += 1
            return
        sent = 0
        try:
            while monotonic() < deadline and (
                    cfg.requests_per_client is None
                    or sent < cfg.requests_per_client):
                created = monotonic()
                request_deadline = created + cfg.timeout_s
                writer.write(self._frame(rng, f"c{index}-{sent}", created))
                sent += 1
                tally.sent += 1
                try:
                    await asyncio.wait_for(writer.drain(),
                                           timeout=request_deadline - monotonic())
                    line = await asyncio.wait_for(
                        reader.readline(),
                        timeout=max(request_deadline - monotonic(), 0.0))
                except (asyncio.TimeoutError, TimeoutError):
                    tally.timeouts += 1
                    break
                if not line:
                    tally.disconnects += 1
                    break
                reply = json.loads(line)
                tally.record_reply(reply, monotonic() - created)
                if not reply.get("ok") and cfg.reject_backoff_s > 0:
                    # Don't hot-spin a saturated server with instant retries.
                    await asyncio.sleep(cfg.reject_backoff_s)
        finally:
            writer.close()

    async def _open_client(self, index: int, deadline: float,
                           tally: _Tally, address: str) -> None:
        """Fixed-rate arrivals regardless of completions (pipelined sends)."""
        cfg = self.config
        rng = np.random.default_rng((cfg.seed, index))
        try:
            reader, writer = await self._connect(address)
        except (asyncio.TimeoutError, TimeoutError):
            tally.timeouts += 1
            return
        pending: dict[str, float] = {}
        done_sending = asyncio.Event()

        async def _receive() -> None:
            while pending or not done_sending.is_set():
                try:
                    line = await asyncio.wait_for(reader.readline(), timeout=0.25)
                except asyncio.TimeoutError:
                    continue
                if not line:
                    tally.disconnects += 1
                    pending.clear()
                    break
                reply = json.loads(line)
                created = pending.pop(str(reply.get("id")), None)
                if created is None:
                    continue
                tally.record_reply(reply, monotonic() - created)

        receiver = asyncio.get_running_loop().create_task(_receive())
        period = 1.0 / cfg.rate_per_client
        next_send = monotonic()
        sent = 0
        try:
            while True:
                now = monotonic()
                if now >= deadline:
                    break
                if now < next_send:
                    await asyncio.sleep(min(next_send - now, deadline - now))
                    continue
                request_id = f"o{index}-{sent}"
                created = monotonic()
                pending[request_id] = created
                writer.write(self._frame(rng, request_id, created))
                try:
                    await asyncio.wait_for(writer.drain(), timeout=cfg.timeout_s)
                except (asyncio.TimeoutError, TimeoutError):
                    # The socket buffer to a wedged server is full; stop
                    # offering load and let the drain grace settle the tally.
                    del pending[request_id]
                    tally.timeouts += 1
                    break
                sent += 1
                tally.sent += 1
                next_send += period
            done_sending.set()
            # Give stragglers a bounded grace period, then count them lost.
            try:
                await asyncio.wait_for(receiver, timeout=cfg.drain_grace_s)
            except asyncio.TimeoutError:
                receiver.cancel()
                tally.timeouts += len(pending)
        finally:
            done_sending.set()
            if not receiver.done():
                receiver.cancel()
            writer.close()
