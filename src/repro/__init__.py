"""repro — a reproduction of "GOSH: Embedding Big Graphs on Small Hardware" (ICPP 2020).

The package is organised around the paper's own structure:

* :mod:`repro.graph` — CSR graph substrate, synthetic dataset generators,
  samplers, IO and partitioning.
* :mod:`repro.coarsening` — MultiEdgeCollapse (sequential and parallel), the
  MILE coarsening baseline, and the coarsening hierarchy with embedding
  projection.
* :mod:`repro.gpu` — the simulated GPU: device-memory accounting, the warp /
  small-dimension execution model, and the vectorised embedding kernels.
* :mod:`repro.embedding` — the GOSH pipeline (Algorithm 2), level trainer
  (Algorithm 3), epoch distribution, configurations (Table 3) and the VERSE
  baseline.
* :mod:`repro.large` — the out-of-memory engine (Algorithm 5): partitioning,
  inside-out rotations, sample pools, GPUState.
* :mod:`repro.eval` — the link-prediction pipeline, logistic-regression
  classifiers, and AUCROC.
* :mod:`repro.baselines` — VERSE, MILE and GraphVite-like comparators.
* :mod:`repro.harness` — dataset registry (Table 2 twins), experiment
  runner, and table formatting used by the benchmarks.

Quickstart::

    from repro import graph, embedding

    g = graph.powerlaw_cluster(2000, m=3, seed=1)
    result = embedding.embed(g, embedding.FAST.scaled(0.05, dim=32))
    print(result.embedding.shape)
"""

from . import baselines, coarsening, embedding, eval, gpu, graph, harness, large
from .embedding import FAST, NO_COARSE, NORMAL, SLOW, GoshConfig, GoshEmbedder, GoshResult, embed
from .graph import CSRGraph

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "coarsening",
    "embedding",
    "eval",
    "gpu",
    "graph",
    "harness",
    "large",
    "FAST",
    "NO_COARSE",
    "NORMAL",
    "SLOW",
    "GoshConfig",
    "GoshEmbedder",
    "GoshResult",
    "embed",
    "CSRGraph",
    "__version__",
]
