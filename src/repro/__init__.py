"""repro — a reproduction of "GOSH: Embedding Big Graphs on Small Hardware" (ICPP 2020).

The package is organised around the paper's own structure:

* :mod:`repro.graph` — CSR graph substrate, synthetic dataset generators,
  samplers, IO and partitioning.
* :mod:`repro.coarsening` — MultiEdgeCollapse (sequential and parallel), the
  MILE coarsening baseline, and the coarsening hierarchy with embedding
  projection.
* :mod:`repro.gpu` — the simulated GPU: device-memory accounting, the warp /
  small-dimension execution model, and the vectorised embedding kernels.
* :mod:`repro.embedding` — the GOSH pipeline (Algorithm 2), level trainer
  (Algorithm 3), epoch distribution, configurations (Table 3) and the VERSE
  baseline.
* :mod:`repro.large` — the out-of-memory engine (Algorithm 5): partitioning,
  inside-out rotations, sample pools, GPUState.
* :mod:`repro.eval` — the link-prediction pipeline, logistic-regression
  classifiers, and AUCROC.
* :mod:`repro.baselines` — VERSE, MILE and GraphVite-like comparators.
* :mod:`repro.api` — the unified tool layer: the ``EmbeddingTool`` protocol,
  the canonical ``EmbeddingResult``, the global tool registry, and the
  serving-oriented ``EmbeddingService`` facade.
* :mod:`repro.store` — the versioned on-disk embedding store: ``.npy``
  shards plus JSON manifests keyed by (graph fingerprint, config hash,
  tool, version), with memory-mapped loads and version GC.
* :mod:`repro.query` — k-NN similarity serving over stored embeddings:
  ``QueryEngine`` with pluggable top-k backends (``blocked`` default,
  ``exact`` oracle).
* :mod:`repro.faults` — deterministic fault injection: named crossing
  points inside the training/store paths, armable by tests and the
  ``embed --inject-fault`` CLI for crash-recovery drills.
* :mod:`repro.harness` — dataset registry (Table 2 twins), experiment
  runner (registry-backed), and table formatting used by the benchmarks.

Quickstart — every backend behind one interface::

    from repro import api, graph

    g = graph.powerlaw_cluster(2000, m=3, seed=1)

    # One-off: resolve a tool from the registry and embed.
    result = api.get_tool("gosh-normal", dim=32, epoch_scale=0.05).embed(g)
    print(result.embedding.shape, result.timings)

    # Serving: the service shares coarsening hierarchies across GOSH runs.
    service = api.EmbeddingService(dim=32, epoch_scale=0.05)
    for tool in ("gosh-fast", "gosh-normal", "gosh-slow"):
        print(tool, service.embed(tool, g).seconds)   # coarsens only once
    print(api.available_tools())
"""

from . import api, baselines, coarsening, embedding, eval, faults, gpu, graph, harness, large, query, store
from .api import EmbeddingResult, EmbeddingService, available_tools, get_tool
from .embedding import FAST, NO_COARSE, NORMAL, SLOW, GoshConfig, GoshEmbedder, GoshResult, embed
from .graph import CSRGraph
from .query import QueryEngine
from .store import EmbeddingStore

__version__ = "1.6.0"

__all__ = [
    "api",
    "baselines",
    "coarsening",
    "embedding",
    "eval",
    "faults",
    "gpu",
    "graph",
    "harness",
    "large",
    "query",
    "store",
    "QueryEngine",
    "EmbeddingStore",
    "EmbeddingResult",
    "EmbeddingService",
    "available_tools",
    "get_tool",
    "FAST",
    "NO_COARSE",
    "NORMAL",
    "SLOW",
    "GoshConfig",
    "GoshEmbedder",
    "GoshResult",
    "embed",
    "CSRGraph",
    "__version__",
]
