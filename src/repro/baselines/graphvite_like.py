"""GraphVite-style baseline: episodic, partitioned, no coarsening.

GraphVite (Zhu et al., 2019) keeps the embedding on the GPU(s) and streams
*episodes* of edge samples from the CPU; when a single GPU cannot hold the
matrix it fails (the limitation GOSH's Section 3.3 removes).  The baseline
here reproduces that behaviour on the simulated device:

* single-level LINE/VERSE-style training on the original graph,
* degree^0.75 negative sampling (GraphVite's default noise distribution),
* episodes of edge samples rather than per-vertex epochs,
* a hard failure (``DeviceMemoryError``) when the embedding does not fit on
  the device — which is exactly what Table 7 reports for the large graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.samplers import NegativeSampler
from ..gpu.device import SimulatedDevice, embedding_fits_on_device
from ..gpu.kernels import train_epoch_optimized
from ..embedding.trainer import init_embedding

__all__ = ["GraphViteConfig", "GraphViteResult", "graphvite_embed"]


@dataclass(frozen=True)
class GraphViteConfig:
    """Fast/slow settings from Section 4.3 (600 / 1000 epochs)."""

    dim: int = 128
    epochs: int = 600
    learning_rate: float = 0.025
    negative_samples: int = 3
    negative_power: float = 0.75
    episode_size: int | None = None   # edges per episode; default |V|
    seed: int = 0


@dataclass
class GraphViteResult:
    embedding: np.ndarray
    seconds: float
    episodes: int


def graphvite_embed(graph: CSRGraph, config: GraphViteConfig | None = None, *,
                    device: SimulatedDevice | None = None) -> GraphViteResult:
    """Train a GraphVite-like embedding, or raise ``DeviceMemoryError``.

    The memory check mirrors the published limitation: the whole embedding
    matrix (plus the graph) must fit on a single device, otherwise the tool
    cannot run.
    """
    cfg = config or GraphViteConfig()
    device = device or SimulatedDevice()
    if not embedding_fits_on_device(graph.num_vertices, cfg.dim, graph.nbytes(), device):
        from ..gpu.device import DeviceMemoryError

        needed = graph.num_vertices * cfg.dim * 4 + graph.nbytes()
        raise DeviceMemoryError(
            f"GraphVite cannot embed {graph.name}: needs ~{needed / 1e9:.2f} GB on a "
            f"{device.spec.memory_bytes / 1e9:.1f} GB device and has no partitioning fallback"
        )

    rng = np.random.default_rng(cfg.seed)
    embedding = init_embedding(graph.num_vertices, cfg.dim, rng)
    neg_sampler = NegativeSampler(graph.num_vertices, degrees=graph.degrees,
                                  power=cfg.negative_power, seed=rng)
    arcs = graph.edge_array()
    episode_size = cfg.episode_size or graph.num_vertices
    episodes = 0

    t0 = perf_counter()
    for epoch in range(cfg.epochs):
        lr = cfg.learning_rate * max(1.0 - epoch / cfg.epochs, 1e-4)
        # One episode: a batch of edges sampled with replacement; the edge
        # source acts as the update source, the edge target as the positive.
        idx = rng.integers(0, arcs.shape[0], size=episode_size)
        batch = arcs[idx]
        # Deduplicate sources within the episode to preserve the
        # one-source-one-warp invariant of the shared kernel.
        _, unique_pos = np.unique(batch[:, 0], return_index=True)
        batch = batch[unique_pos]
        sources = batch[:, 0]
        positives = batch[:, 1]
        negatives = neg_sampler.sample((sources.shape[0], cfg.negative_samples))
        train_epoch_optimized(embedding, sources, positives, negatives, lr, device=device)
        episodes += 1
    return GraphViteResult(embedding=embedding, seconds=perf_counter() - t0, episodes=episodes)
