"""Baseline embedding systems reimplemented for comparison: VERSE, MILE, GraphVite-like."""

from ..embedding.verse import VerseConfig, VerseResult, verse_embed
from .graphvite_like import GraphViteConfig, GraphViteResult, graphvite_embed
from .mile import MileConfig, MileResult, mile_embed

__all__ = [
    "VerseConfig",
    "VerseResult",
    "verse_embed",
    "GraphViteConfig",
    "GraphViteResult",
    "graphvite_embed",
    "MileConfig",
    "MileResult",
    "mile_embed",
]
