"""MILE baseline pipeline.

MILE (Multi-Level Embedding) coarsens the graph for a fixed number of levels
with SEM + heavy-edge matching, embeds only the *coarsest* graph with a base
embedding method, and then refines the embedding back up the hierarchy with a
graph-convolution-style refinement model.  The paper compares against MILE in
Tables 5 (coarsening) and 6 (end-to-end quality/time).

Substitutions relative to the original MILE:

* base embedding: our VERSE-style trainer (the original uses DeepWalk; both
  are sampling-based single-layer models and the comparison the paper makes
  is about the *multilevel strategy*, not the base method),
* refinement: the original learns an MD-GCN; we implement the same
  propagation operator (normalised-adjacency smoothing of the projected
  embedding) without the learned weights, which is MILE's published fallback
  refinement and keeps the pipeline dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..coarsening.hierarchy import CoarseningHierarchy, expand_embedding
from ..coarsening.mile_coarsening import mile_coarsen
from ..embedding.trainer import init_embedding, train_level
from ..graph.csr import CSRGraph

__all__ = ["MileConfig", "MileResult", "mile_embed"]


@dataclass(frozen=True)
class MileConfig:
    """MILE settings from Section 4.3 (8 coarsening levels, lr 0.001)."""

    dim: int = 128
    coarsening_levels: int = 8
    base_epochs: int = 200
    learning_rate: float = 0.025
    negative_samples: int = 3
    refinement_hops: int = 2
    self_weight: float = 0.5
    seed: int = 0


@dataclass
class MileResult:
    embedding: np.ndarray
    hierarchy: CoarseningHierarchy
    coarsening_seconds: float
    training_seconds: float
    refinement_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.coarsening_seconds + self.training_seconds + self.refinement_seconds


def _normalized_adjacency_smooth(graph: CSRGraph, embedding: np.ndarray,
                                 hops: int, self_weight: float) -> np.ndarray:
    """GCN-style propagation: E <- a*E + (1-a) * D^-1 A E, repeated ``hops`` times."""
    current = embedding.astype(np.float64)
    deg = np.maximum(graph.degrees.astype(np.float64), 1.0)
    arcs = graph.edge_array()
    src, dst = arcs[:, 0], arcs[:, 1]
    for _ in range(hops):
        aggregated = np.zeros_like(current)
        np.add.at(aggregated, src, current[dst])
        aggregated /= deg[:, None]
        current = self_weight * current + (1.0 - self_weight) * aggregated
    return current.astype(embedding.dtype)


def mile_embed(graph: CSRGraph, config: MileConfig | None = None) -> MileResult:
    """Run the MILE pipeline: coarsen -> embed coarsest -> refine upward."""
    cfg = config or MileConfig()
    t0 = perf_counter()
    coarsening = mile_coarsen(graph, cfg.coarsening_levels, seed=cfg.seed)
    hierarchy = CoarseningHierarchy.from_result(coarsening)
    coarsening_seconds = perf_counter() - t0

    t1 = perf_counter()
    coarsest = hierarchy.coarsest()
    rng = np.random.default_rng(cfg.seed)
    embedding = init_embedding(coarsest.num_vertices, cfg.dim, rng)
    train_level(coarsest, embedding, cfg.base_epochs,
                negative_samples=cfg.negative_samples,
                learning_rate=cfg.learning_rate, seed=cfg.seed,
                level=hierarchy.num_levels - 1)
    training_seconds = perf_counter() - t1

    t2 = perf_counter()
    # Refinement: project to each finer level and smooth with the finer graph.
    for level in range(hierarchy.num_levels - 1, 0, -1):
        mapping = hierarchy.mappings[level - 1]
        embedding = expand_embedding(embedding, mapping)
        finer = hierarchy.level(level - 1)
        embedding = _normalized_adjacency_smooth(finer, embedding,
                                                 cfg.refinement_hops, cfg.self_weight)
    refinement_seconds = perf_counter() - t2

    return MileResult(
        embedding=embedding,
        hierarchy=hierarchy,
        coarsening_seconds=coarsening_seconds,
        training_seconds=training_seconds,
        refinement_seconds=refinement_seconds,
    )
