"""Deterministic fault injection for the training pipeline.

The serving tier earned its robustness guarantees through *injected* failures
(PR 8: dead/hung/flapping shards pinned by deterministic tests).  This module
gives the production side — coarsen → train → store — the same discipline: a
registry of **named injection points** threaded through the code paths that a
real crash would interrupt.  Tests (and the ``embed --inject-fault point:n``
CLI knob) arm a point to raise at its n-th crossing; unarmed points cost one
counter increment and are no-ops otherwise.

Injection points
----------------

===================  =====================================================
``level-boundary``    after one hierarchy level finished training (and its
                      boundary checkpoint, if any, was committed) —
                      :meth:`repro.embedding.gosh.GoshEmbedder.embed`
``rotation-boundary`` after one rotation of the partitioned engine finished
                      (post rotation checkpoint) —
                      :class:`repro.large.scheduler.LargeGraphTrainer`
``pool-producer``     before a sample pool is built, on whichever thread
                      produces it — both executors in
                      :mod:`repro.large.pipeline`
``store-commit``      at the store's atomic commit point, *before* the
                      staging-dir rename — simulates a writer SIGKILLed
                      mid-save, deliberately leaking the ``.tmp-*`` dir —
                      :meth:`repro.store.store.EmbeddingStore.save`
``device-oom``        before a device allocation succeeds; raises
                      :class:`~repro.gpu.device.DeviceMemoryError` so the
                      trainer's degradation path engages —
                      :meth:`repro.gpu.device.SimulatedDevice.allocate`
===================  =====================================================

Counting is *per arm*: ``arm(point, at=n)`` fires at the n-th crossing
**after** arming, then disarms itself (one-shot).  That makes the kill point
a pure function of the schedule — the basis of the resume-parity golden
tests, which kill a run at an exact boundary and prove the resumed run
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "FAULT_POINTS",
    "FaultRegistry",
    "InjectedFault",
    "UnknownFaultPointError",
    "FAULTS",
    "parse_fault_spec",
]

#: Every registered injection point and where it lives.
FAULT_POINTS: dict[str, str] = {
    "level-boundary": "GoshEmbedder.embed — after a hierarchy level completes",
    "rotation-boundary": "LargeGraphTrainer — after a rotation completes",
    "pool-producer": "pipeline executors — before a sample pool is built",
    "store-commit": "EmbeddingStore.save — before the atomic rename",
    "device-oom": "SimulatedDevice.allocate — raises DeviceMemoryError",
}


class UnknownFaultPointError(ValueError):
    """Raised when arming (or parsing) a point name that is not registered."""

    def __init__(self, point: str):
        super().__init__(
            f"unknown fault point {point!r}; options: {', '.join(sorted(FAULT_POINTS))}")
        self.point = point


class InjectedFault(RuntimeError):
    """The failure an armed injection point raises at its scheduled crossing.

    ``leaves_partial_state`` tells the crossing's cleanup handlers to behave
    like a SIGKILL (skip their normal tidy-up) — the ``store-commit`` point
    uses it to leak its staging directory the way a killed writer would.
    """

    def __init__(self, point: str, crossing: int, context: dict[str, object]):
        detail = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
        super().__init__(
            f"injected fault at {point!r} (crossing {crossing}"
            + (f"; {detail}" if detail else "") + ")")
        self.point = point
        self.crossing = crossing
        self.context = dict(context)
        self.leaves_partial_state = point == "store-commit"


def _default_exception(point: str, crossing: int,
                       context: dict[str, object]) -> BaseException:
    if point == "device-oom":
        # Imported lazily: repro.gpu.device itself crosses this registry, so
        # a module-level import would be circular.
        from ..gpu.device import DeviceMemoryError

        return DeviceMemoryError(
            f"injected device OOM (crossing {crossing} of 'device-oom')")
    return InjectedFault(point, crossing, context)


class _ArmedPoint:
    """One armed injection: fire when ``remaining`` crossings have passed."""

    __slots__ = ("remaining", "exception")

    def __init__(self, at: int,
                 exception: Callable[[str, int, dict[str, object]], BaseException]):
        self.remaining = at
        self.exception = exception


class FaultRegistry:
    """Thread-safe registry of armable, deterministic injection points.

    One process-wide instance (:data:`FAULTS`) is threaded through the
    pipeline; tests that need isolation can construct their own and reset
    the global one around each case (see ``tests/faults/conftest.py``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: dict[str, _ArmedPoint] = {}
        self._crossings: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Arming
    # ------------------------------------------------------------------ #
    def arm(self, point: str, at: int = 1, *,
            exception: Callable[[str, int, dict[str, object]], BaseException]
            | None = None) -> None:
        """Arm ``point`` to raise at its ``at``-th crossing from now.

        ``exception`` overrides the raised error; by default every point
        raises :class:`InjectedFault` except ``device-oom``, which raises
        the real :class:`~repro.gpu.device.DeviceMemoryError` so the
        degradation path under test is the production one.
        """
        if point not in FAULT_POINTS:
            raise UnknownFaultPointError(point)
        if at < 1:
            raise ValueError(f"at must be >= 1, got {at}")
        with self._lock:
            self._armed[point] = _ArmedPoint(at, exception or _default_exception)

    def disarm(self, point: str | None = None) -> None:
        """Disarm one point (or all of them) without touching the counters."""
        with self._lock:
            if point is None:
                self._armed.clear()
            else:
                self._armed.pop(point, None)

    def reset(self) -> None:
        """Disarm everything and zero the lifetime crossing counters."""
        with self._lock:
            self._armed.clear()
            self._crossings.clear()

    @contextmanager
    def armed(self, spec: str) -> Iterator[None]:
        """Context manager: ``with FAULTS.armed("rotation-boundary:2"): ...``.

        Disarms the point (fired or not) and leaves the rest of the registry
        untouched on exit.
        """
        point, at = parse_fault_spec(spec)
        self.arm(point, at)
        try:
            yield
        finally:
            self.disarm(point)

    # ------------------------------------------------------------------ #
    # Crossing
    # ------------------------------------------------------------------ #
    def crossing(self, point: str, **context: object) -> None:
        """Record one crossing of ``point``; raise if an armed count expires.

        The armed entry is removed *before* raising (one-shot), so a retry
        loop that catches the injected error — the trainer's OOM degradation
        path — makes progress instead of dying forever.
        """
        if point not in FAULT_POINTS:
            raise UnknownFaultPointError(point)
        with self._lock:
            self._crossings[point] = self._crossings.get(point, 0) + 1
            count = self._crossings[point]
            armed = self._armed.get(point)
            if armed is None:
                return
            armed.remaining -= 1
            if armed.remaining > 0:
                return
            del self._armed[point]
            exception = armed.exception
        raise exception(point, count, dict(context))

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def crossings(self, point: str) -> int:
        """Lifetime crossing count for ``point`` (since the last reset)."""
        if point not in FAULT_POINTS:
            raise UnknownFaultPointError(point)
        with self._lock:
            return self._crossings.get(point, 0)

    def is_armed(self, point: str) -> bool:
        with self._lock:
            return point in self._armed

    def snapshot(self) -> dict[str, object]:
        """Counters + armed points, for stats endpoints and debugging."""
        with self._lock:
            return {
                "crossings": dict(self._crossings),
                "armed": {p: a.remaining for p, a in self._armed.items()},
            }

    def metric_samples(self) -> "list[object]":
        """The snapshot as ``repro_fault_*`` Prometheus samples.

        Lazy import keeps :mod:`repro.faults` dependency-free for the many
        subsystems that import ``FAULTS`` at module scope.
        """
        from ..obs.metrics import counter_sample, gauge_sample

        snap = self.snapshot()
        samples: list[object] = []
        for point, n in sorted(snap["crossings"].items()):
            samples.append(counter_sample(
                "repro_fault_crossings_total",
                "lifetime crossings of each fault-injection point",
                float(n), {"point": point}))
        for point, remaining in sorted(snap["armed"].items()):
            samples.append(gauge_sample(
                "repro_fault_armed",
                "crossings remaining before an armed point fires",
                float(remaining), {"point": point}))
        return samples


def parse_fault_spec(spec: str) -> tuple[str, int]:
    """Parse a ``point[:n]`` CLI spec into ``(point, at)``; ``n`` defaults to 1."""
    point, sep, count = spec.partition(":")
    point = point.strip()
    if point not in FAULT_POINTS:
        raise UnknownFaultPointError(point)
    if not sep:
        return point, 1
    try:
        at = int(count)
    except ValueError:
        raise ValueError(
            f"bad fault spec {spec!r}: expected point:n with integer n") from None
    if at < 1:
        raise ValueError(f"bad fault spec {spec!r}: n must be >= 1")
    return point, at


#: The process-wide registry the pipeline crosses.
FAULTS = FaultRegistry()
