"""repro.faults — deterministic fault injection for the training pipeline.

Named injection points (``level-boundary``, ``rotation-boundary``,
``pool-producer``, ``store-commit``, ``device-oom``) threaded through the
trainer, the pipeline executors, the simulated device, and the store.  Tests
and the ``embed --inject-fault point:n`` CLI knob arm a point on the
process-wide :data:`FAULTS` registry to raise at its n-th crossing; see
:mod:`repro.faults.registry` for the exact placement of every point.

Quickstart::

    from repro.faults import FAULTS

    with FAULTS.armed("rotation-boundary:2"):
        tool.embed(graph)        # raises InjectedFault at the 2nd boundary
"""

from .registry import (
    FAULT_POINTS,
    FAULTS,
    FaultRegistry,
    InjectedFault,
    UnknownFaultPointError,
    parse_fault_spec,
)

__all__ = [
    "FAULT_POINTS",
    "FAULTS",
    "FaultRegistry",
    "InjectedFault",
    "UnknownFaultPointError",
    "parse_fault_spec",
]
