"""MultiEdgeCollapse — the sequential coarsening algorithm (Algorithm 4).

Given a graph ``G_i``, the algorithm produces a smaller graph ``G_{i+1}``
whose vertices are *clusters* (super vertices) of ``G_i`` vertices, plus the
mapping array ``map_i`` that records which super vertex each original vertex
belongs to.  The three key design decisions from Section 3.2:

1. **Agglomerative matching around hubs** — the vertices are processed in
   decreasing-degree order; an unmarked vertex opens a new cluster and pulls
   its unmarked neighbours into it, which preserves first- and second-order
   proximity (neighbourhoods collapse together).
2. **Hub-collision rule** — a neighbour ``u`` may only join ``v``'s cluster if
   ``|Γ(v)| ≤ δ`` or ``|Γ(u)| ≤ δ`` where ``δ = |E_i| / |V_i|``.  Merging two
   hubs destroys structural information and creates giant super vertices that
   stall further coarsening.
3. **Degree ordering** — processing high-degree vertices first stops small
   vertices from "locking" hubs into tiny clusters, maximising the shrink
   rate per level.

``coarsen_graph`` builds ``G_{i+1}`` from ``(G_i, map_i)`` by relabelling
every edge through the mapping and removing duplicates and self loops, which
is the CSR-level equivalent of the paper's ``Coarsen`` call (line 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "CoarseningResult",
    "degree_order",
    "collapse_once",
    "coarsen_graph",
    "multi_edge_collapse",
]

#: Default stopping threshold from the paper (Section 3.2: "threshold = 100
#: is used for all the experiments ... which is the default value for Gosh").
DEFAULT_THRESHOLD = 100


@dataclass
class CoarseningResult:
    """The output of a full multilevel coarsening run.

    Attributes
    ----------
    graphs:
        ``[G_0, G_1, ..., G_{D-1}]`` — the original graph followed by each
        coarser level.
    mappings:
        ``mappings[i]`` maps vertices of ``G_i`` to vertices of ``G_{i+1}``
        (length ``|V_i|``).  There are ``D - 1`` mappings.
    level_times:
        Wall-clock seconds spent producing each coarse level (for Table 5).
    """

    graphs: list[CSRGraph]
    mappings: list[np.ndarray]
    level_times: list[float]

    @property
    def num_levels(self) -> int:
        """The paper's D — number of graphs in the hierarchy."""
        return len(self.graphs)

    @property
    def level_sizes(self) -> list[int]:
        return [g.num_vertices for g in self.graphs]

    def total_time(self) -> float:
        return float(sum(self.level_times))


def degree_order(graph: CSRGraph) -> np.ndarray:
    """Vertices in decreasing-degree order (counting sort, O(|V| + max_deg)).

    The paper sorts by neighbourhood size so that hub vertices open clusters
    before their low-degree neighbours can lock them.  A counting sort keeps
    the step linear; ties are broken by vertex id for determinism.
    """
    degrees = graph.degrees
    if degrees.size == 0:
        return np.zeros(0, dtype=np.int64)
    # np.argsort with stable kind on the negated degrees == counting-sort
    # semantics (deterministic, linear-ish for small integer keys).
    return np.argsort(-degrees, kind="stable").astype(np.int64)


def collapse_once(graph: CSRGraph, *, order: np.ndarray | None = None,
                  hub_rule: bool = True) -> tuple[np.ndarray, int]:
    """One pass of MultiEdgeCollapse mapping (lines 3–14 of Algorithm 4).

    Returns ``(mapping, num_clusters)`` where ``mapping[v]`` is the new super
    vertex id of ``v``.  ``hub_rule=False`` disables the δ-threshold check
    (used by the ablation bench).
    """
    n = graph.num_vertices
    if order is None:
        order = degree_order(graph)
    mapping = np.full(n, -1, dtype=np.int64)
    degrees = graph.degrees
    xadj, adj = graph.xadj, graph.adj
    delta = graph.num_edges / max(n, 1)
    cluster = 0
    for v in order:
        v = int(v)
        if mapping[v] != -1:
            continue
        mapping[v] = cluster
        deg_v_ok = degrees[v] <= delta
        start, end = xadj[v], xadj[v + 1]
        for idx in range(start, end):
            u = int(adj[idx])
            if mapping[u] != -1:
                continue
            if hub_rule and not (deg_v_ok or degrees[u] <= delta):
                # Two hubs: refuse the merge to keep structural information.
                continue
            mapping[u] = cluster
        cluster += 1
    return mapping, cluster


def coarsen_graph(graph: CSRGraph, mapping: np.ndarray, num_clusters: int,
                  *, name: str | None = None) -> CSRGraph:
    """Build ``G_{i+1}`` from ``G_i`` and its cluster mapping.

    Every arc ``(u, v)`` of ``G_i`` becomes ``(map[u], map[v])``; self loops
    created by intra-cluster edges are removed and parallel arcs are merged.
    """
    if mapping.shape[0] != graph.num_vertices:
        raise ValueError("mapping must have one entry per vertex")
    if np.any(mapping < 0):
        raise ValueError("mapping contains unassigned vertices")
    arcs = graph.edge_array()
    new_src = mapping[arcs[:, 0]]
    new_dst = mapping[arcs[:, 1]]
    keep = new_src != new_dst
    coarse = CSRGraph.from_edges(
        int(num_clusters),
        np.column_stack([new_src[keep], new_dst[keep]]),
        undirected=True,
        dedup=True,
        name=name or f"{graph.name}_coarse",
    )
    return coarse


def multi_edge_collapse(graph: CSRGraph, *, threshold: int = DEFAULT_THRESHOLD,
                        max_levels: int = 32, hub_rule: bool = True,
                        use_degree_order: bool = True) -> CoarseningResult:
    """Full multilevel coarsening (Algorithm 4).

    Coarsening continues until the newest graph has at most ``threshold``
    vertices, a level fails to shrink the graph (fixed point), or
    ``max_levels`` levels have been produced.

    Parameters
    ----------
    threshold:
        Stop when ``|V_i| <= threshold`` (paper default 100).
    hub_rule:
        Apply the δ hub-collision rule (ablation hook).
    use_degree_order:
        Process vertices in decreasing-degree order (ablation hook); when
        False the natural order 0..n-1 is used.
    """
    graphs = [graph]
    mappings: list[np.ndarray] = []
    times: list[float] = []
    current = graph
    level = 0
    while current.num_vertices > threshold and level < max_levels:
        t0 = perf_counter()
        order = degree_order(current) if use_degree_order else np.arange(current.num_vertices)
        mapping, num_clusters = collapse_once(current, order=order, hub_rule=hub_rule)
        if num_clusters >= current.num_vertices:
            # No shrinkage possible (e.g. empty graph / all singletons); stop.
            break
        nxt = coarsen_graph(current, mapping, num_clusters,
                            name=f"{graph.name}_L{level + 1}")
        times.append(perf_counter() - t0)
        graphs.append(nxt)
        mappings.append(mapping)
        current = nxt
        level += 1
    return CoarseningResult(graphs=graphs, mappings=mappings, level_times=times)
