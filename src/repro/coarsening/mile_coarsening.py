"""MILE-style coarsening baseline.

MILE (Liang et al., 2018) coarsens with a hybrid of Structural Equivalence
Matching (SEM) and Normalized Heavy Edge Matching (NHEM): vertices with
identical neighbourhoods are merged first, then remaining vertices are
matched pairwise along their heaviest (normalised) incident edge.  Because
every merge combines at most a handful of vertices, MILE shrinks the graph by
roughly a factor of two per level — much more slowly than MultiEdgeCollapse,
which is exactly the comparison of Table 5.

This is a from-scratch reimplementation of that scheme on the CSR substrate,
with the same interface as the GOSH coarseners so that the Table 5 bench and
the MILE baseline pipeline can swap it in.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..graph.csr import CSRGraph
from .multi_edge_collapse import CoarseningResult, coarsen_graph

__all__ = ["heavy_edge_matching_once", "structural_equivalence_groups", "mile_coarsen"]


def structural_equivalence_groups(graph: CSRGraph) -> np.ndarray:
    """Group vertices whose adjacency lists are identical (SEM).

    Returns an array of group labels (not yet compacted to cluster ids): two
    vertices share a label iff they have exactly the same sorted neighbour
    list.  Hash the rows to avoid quadratic comparisons.
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    buckets: dict[tuple[int, ...], int] = {}
    for v in range(n):
        key = tuple(int(x) for x in graph.neighbors(v))
        if not key:
            continue  # isolated vertices stay alone
        if key in buckets:
            labels[v] = buckets[key]
        else:
            buckets[key] = v
    return labels


def heavy_edge_matching_once(graph: CSRGraph, *, use_sem: bool = True,
                             rng: np.random.Generator | None = None) -> tuple[np.ndarray, int]:
    """One level of MILE coarsening: SEM groups then pairwise NHEM matching.

    The normalised edge weight between u and v is ``1 / sqrt(deg(u) deg(v))``
    (all edges have unit weight in our graphs); each unmatched vertex is
    matched to its unmatched neighbour with the highest normalised weight,
    i.e. the lowest-degree neighbour.
    """
    n = graph.num_vertices
    rng = rng or np.random.default_rng(0)
    degrees = graph.degrees.astype(np.float64)
    matched = np.full(n, -1, dtype=np.int64)

    if use_sem:
        sem_labels = structural_equivalence_groups(graph)
        # Vertices sharing a SEM label merge into the representative.
        for v in range(n):
            rep = sem_labels[v]
            if rep != v:
                matched[v] = rep
                matched[rep] = rep

    # NHEM on the remaining vertices, processed in random order as MILE does.
    order = rng.permutation(n)
    xadj, adj = graph.xadj, graph.adj
    for v in order:
        v = int(v)
        if matched[v] != -1:
            continue
        best_u = -1
        best_w = -1.0
        for idx in range(xadj[v], xadj[v + 1]):
            u = int(adj[idx])
            if matched[u] != -1 or u == v:
                continue
            w = 1.0 / np.sqrt(max(degrees[v], 1.0) * max(degrees[u], 1.0))
            if w > best_w:
                best_w = w
                best_u = u
        if best_u >= 0:
            matched[v] = v
            matched[best_u] = v
        else:
            matched[v] = v
    # Any vertex never touched (isolated) becomes its own cluster.
    untouched = matched == -1
    matched[untouched] = np.flatnonzero(untouched)

    unique_ids, compact = np.unique(matched, return_inverse=True)
    return compact.astype(np.int64), int(unique_ids.shape[0])


def mile_coarsen(graph: CSRGraph, num_levels: int, *, use_sem: bool = True,
                 seed: int = 0) -> CoarseningResult:
    """Coarsen ``num_levels`` times with the MILE scheme (Table 5 baseline).

    MILE has no size-based stopping criterion — the paper fixes the number of
    levels — so this mirrors that interface.
    """
    rng = np.random.default_rng(seed)
    graphs = [graph]
    mappings: list[np.ndarray] = []
    times: list[float] = []
    current = graph
    for level in range(num_levels):
        t0 = perf_counter()
        mapping, num_clusters = heavy_edge_matching_once(current, use_sem=use_sem, rng=rng)
        if num_clusters >= current.num_vertices:
            break
        nxt = coarsen_graph(current, mapping, num_clusters,
                            name=f"{graph.name}_mile_L{level + 1}")
        times.append(perf_counter() - t0)
        graphs.append(nxt)
        mappings.append(mapping)
        current = nxt
    return CoarseningResult(graphs=graphs, mappings=mappings, level_times=times)
