"""Graph coarsening: MultiEdgeCollapse (sequential + parallel), MILE baseline, hierarchy."""

from .hierarchy import CoarseningHierarchy, expand_embedding, project_vertex_sets
from .metrics import (
    CoarseningReport,
    edge_retention,
    hub_merge_count,
    shrink_rates,
    summarize,
    super_vertex_balance,
)
from .mile_coarsening import heavy_edge_matching_once, mile_coarsen, structural_equivalence_groups
from .multi_edge_collapse import (
    DEFAULT_THRESHOLD,
    CoarseningResult,
    coarsen_graph,
    collapse_once,
    degree_order,
    multi_edge_collapse,
)
from .parallel_collapse import (
    compact_mapping,
    parallel_collapse_once,
    parallel_multi_edge_collapse,
    simulated_threaded_collapse,
)

__all__ = [
    "CoarseningHierarchy",
    "expand_embedding",
    "project_vertex_sets",
    "CoarseningReport",
    "edge_retention",
    "hub_merge_count",
    "shrink_rates",
    "summarize",
    "super_vertex_balance",
    "heavy_edge_matching_once",
    "mile_coarsen",
    "structural_equivalence_groups",
    "DEFAULT_THRESHOLD",
    "CoarseningResult",
    "coarsen_graph",
    "collapse_once",
    "degree_order",
    "multi_edge_collapse",
    "compact_mapping",
    "parallel_collapse_once",
    "parallel_multi_edge_collapse",
    "simulated_threaded_collapse",
]
