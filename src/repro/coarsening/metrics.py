"""Coarsening quality metrics.

Section 3.2 defines two notions:

* **efficiency** at level i — the shrink rate ``(|V_{i-1}| - |V_i|) / |V_{i-1}|``,
* **effectiveness** — how well the coarse hierarchy preserves the structure
  that embedding needs.  The paper measures effectiveness indirectly through
  downstream AUCROC; here we additionally expose cheap structural proxies
  (edge retention, hub-merge counts, super-vertex balance) that the ablation
  benches report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from .multi_edge_collapse import CoarseningResult

__all__ = [
    "shrink_rates",
    "edge_retention",
    "hub_merge_count",
    "super_vertex_balance",
    "CoarseningReport",
    "summarize",
]


def shrink_rates(result: CoarseningResult) -> list[float]:
    """Per-level coarsening efficiency: (|V_{i-1}| - |V_i|) / |V_{i-1}|."""
    sizes = result.level_sizes
    return [
        (sizes[i - 1] - sizes[i]) / sizes[i - 1] if sizes[i - 1] > 0 else 0.0
        for i in range(1, len(sizes))
    ]


def edge_retention(result: CoarseningResult) -> list[float]:
    """Fraction of (coarse) edges surviving at each level relative to level 0."""
    base = max(result.graphs[0].num_edges, 1)
    return [g.num_edges / base for g in result.graphs]


def hub_merge_count(graph: CSRGraph, mapping: np.ndarray) -> int:
    """Number of clusters containing two or more hub vertices.

    A *hub* is a vertex with degree above the graph density δ = |E|/|V|.
    The hub-collision rule is designed to keep this number at zero when two
    hubs are adjacent; hubs may still share a cluster only if a third vertex
    pulled them together, which the sequential algorithm forbids.
    """
    delta = graph.num_edges / max(graph.num_vertices, 1)
    is_hub = graph.degrees > delta
    if not np.any(is_hub):
        return 0
    num_clusters = int(mapping.max()) + 1 if mapping.size else 0
    hubs_per_cluster = np.bincount(mapping[is_hub], minlength=num_clusters)
    return int(np.sum(hubs_per_cluster >= 2))


def super_vertex_balance(mapping: np.ndarray) -> float:
    """Max cluster size divided by mean cluster size (1.0 == perfectly balanced).

    Giant super vertices are precisely what the hub rule tries to avoid.
    """
    if mapping.size == 0:
        return 1.0
    counts = np.bincount(mapping)
    counts = counts[counts > 0]
    return float(counts.max() / counts.mean())


@dataclass
class CoarseningReport:
    """Aggregate report for a coarsening run (used by benches and EXPERIMENTS.md)."""

    num_levels: int
    level_sizes: list[int]
    shrink_rates: list[float]
    total_time: float
    last_level_size: int
    mean_shrink_rate: float

    def as_row(self) -> dict[str, object]:
        return {
            "D": self.num_levels,
            "|V_{D-1}|": self.last_level_size,
            "time_s": round(self.total_time, 4),
            "mean_shrink": round(self.mean_shrink_rate, 3),
            "sizes": self.level_sizes,
        }


def summarize(result: CoarseningResult) -> CoarseningReport:
    rates = shrink_rates(result)
    return CoarseningReport(
        num_levels=result.num_levels,
        level_sizes=result.level_sizes,
        shrink_rates=rates,
        total_time=result.total_time(),
        last_level_size=result.graphs[-1].num_vertices,
        mean_shrink_rate=float(np.mean(rates)) if rates else 0.0,
    )
