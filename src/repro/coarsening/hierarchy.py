"""Coarsening hierarchy container and embedding projection.

GOSH trains the smallest graph first and *expands* its embedding up the
hierarchy: ``M_{i-1}[v] = M_i[map_{i-1}[v]]`` (every vertex inherits its super
vertex's vector).  This module wraps the list of graphs/mappings produced by
the coarsening algorithms and provides that projection, plus helpers used by
Algorithm 2 (training order, per-level lookup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..graph.csr import CSRGraph
from .multi_edge_collapse import CoarseningResult

__all__ = ["CoarseningHierarchy", "expand_embedding", "project_vertex_sets"]


def expand_embedding(coarse_embedding: np.ndarray, mapping: np.ndarray) -> np.ndarray:
    """Project ``M_{i+1}`` down to level ``i``: each vertex copies its super vertex.

    Parameters
    ----------
    coarse_embedding:
        ``(|V_{i+1}|, d)`` matrix.
    mapping:
        Length ``|V_i|`` array mapping fine vertices to coarse vertices.
    """
    mapping = np.asarray(mapping, dtype=np.int64)
    if mapping.size and (mapping.min() < 0 or mapping.max() >= coarse_embedding.shape[0]):
        raise ValueError("mapping refers to vertices outside the coarse embedding")
    # Fancy indexing copies rows, giving each fine vertex its own vector that
    # subsequent training can move independently.
    return coarse_embedding[mapping].copy()


def project_vertex_sets(mapping: np.ndarray, num_clusters: int) -> list[np.ndarray]:
    """Invert a mapping: for every coarse vertex, the fine vertices it contains."""
    order = np.argsort(mapping, kind="stable")
    sorted_map = mapping[order]
    boundaries = np.searchsorted(sorted_map, np.arange(num_clusters + 1))
    return [order[boundaries[k]: boundaries[k + 1]] for k in range(num_clusters)]


@dataclass
class CoarseningHierarchy:
    """A trained-friendly view over a :class:`CoarseningResult`.

    ``graphs[0]`` is the original graph; ``graphs[-1]`` is the smallest.
    ``mappings[i]`` maps ``graphs[i]`` vertices to ``graphs[i + 1]`` vertices.
    """

    graphs: list[CSRGraph]
    mappings: list[np.ndarray]

    @classmethod
    def from_result(cls, result: CoarseningResult) -> "CoarseningHierarchy":
        return cls(graphs=list(result.graphs), mappings=list(result.mappings))

    @classmethod
    def trivial(cls, graph: CSRGraph) -> "CoarseningHierarchy":
        """A hierarchy with no coarsening (the Gosh-NoCoarse configuration)."""
        return cls(graphs=[graph], mappings=[])

    # ------------------------------------------------------------------ #
    @property
    def num_levels(self) -> int:
        return len(self.graphs)

    def level(self, i: int) -> CSRGraph:
        return self.graphs[i]

    def level_sizes(self) -> list[int]:
        return [g.num_vertices for g in self.graphs]

    def coarsest(self) -> CSRGraph:
        return self.graphs[-1]

    def training_order(self) -> Iterator[int]:
        """Levels in training order: coarsest (D-1) down to 0."""
        return iter(range(self.num_levels - 1, -1, -1))

    # ------------------------------------------------------------------ #
    def expand(self, level: int, embedding: np.ndarray) -> np.ndarray:
        """Expand the embedding of ``graphs[level]`` to ``graphs[level - 1]``.

        ``level`` must be at least 1.
        """
        if level <= 0 or level >= self.num_levels:
            raise ValueError(f"level must be in [1, {self.num_levels - 1}], got {level}")
        mapping = self.mappings[level - 1]
        if embedding.shape[0] != self.graphs[level].num_vertices:
            raise ValueError(
                f"embedding has {embedding.shape[0]} rows but level {level} has "
                f"{self.graphs[level].num_vertices} vertices"
            )
        return expand_embedding(embedding, mapping)

    def project_to_original(self, level: int, embedding: np.ndarray) -> np.ndarray:
        """Expand an embedding from ``level`` all the way down to level 0."""
        current = embedding
        for lvl in range(level, 0, -1):
            current = self.expand(lvl, current)
        return current

    def composed_mapping(self, level: int) -> np.ndarray:
        """Mapping from level-0 vertices directly to level-``level`` vertices."""
        n0 = self.graphs[0].num_vertices
        composed = np.arange(n0, dtype=np.int64)
        for lvl in range(level):
            composed = self.mappings[lvl][composed]
        return composed

    def super_vertex_sizes(self, level: int) -> np.ndarray:
        """Number of original (level-0) vertices inside each level-``level`` vertex."""
        composed = self.composed_mapping(level)
        return np.bincount(composed, minlength=self.graphs[level].num_vertices)

    def validate(self) -> None:
        """Structural sanity checks used by tests and the property suite."""
        if len(self.mappings) != len(self.graphs) - 1:
            raise ValueError("need exactly one mapping between consecutive levels")
        for i, mapping in enumerate(self.mappings):
            fine, coarse = self.graphs[i], self.graphs[i + 1]
            if mapping.shape[0] != fine.num_vertices:
                raise ValueError(f"mapping {i} has wrong length")
            if mapping.size and (mapping.min() < 0 or mapping.max() >= coarse.num_vertices):
                raise ValueError(f"mapping {i} refers to non-existent coarse vertices")
            # Every coarse vertex must represent at least one fine vertex.
            counts = np.bincount(mapping, minlength=coarse.num_vertices)
            if np.any(counts == 0):
                raise ValueError(f"mapping {i} leaves empty super vertices")
