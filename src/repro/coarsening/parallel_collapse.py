"""Parallel MultiEdgeCollapse (Section 3.2.2).

The original implementation parallelises the mapping phase over τ OpenMP
threads with a lock per ``map`` entry and uses the *hub-vertex id* as the
temporary cluster id (so no shared counter is needed), then compacts the ids
in a final O(|V|) pass.  Coarse-graph construction uses per-thread private
edge buffers that are merged with a prefix-sum scan.

Hardware substitution: this environment exposes a single CPU core, so real
OS threads cannot demonstrate the speedup.  We therefore provide two
implementations with the *same algorithmic semantics*:

* :func:`parallel_collapse_once` — a fully vectorised NumPy pass that plays
  the role of the τ-thread version.  Like the threaded original it may
  produce a slightly different (but equally valid) clustering than the
  sequential pass, because cluster ownership is decided by priority rather
  than strict sequential order.  Its speedup over the pure-Python sequential
  loop on the same machine is what Table 4 measures.
* :func:`simulated_threaded_collapse` — a deterministic simulation of τ
  threads with per-entry locks and skip-on-contention semantics, used by the
  tests to check that the lock protocol yields consistent coarsenings.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..graph.csr import CSRGraph
from .multi_edge_collapse import CoarseningResult, coarsen_graph, DEFAULT_THRESHOLD

__all__ = [
    "parallel_collapse_once",
    "parallel_multi_edge_collapse",
    "simulated_threaded_collapse",
    "compact_mapping",
]


def compact_mapping(raw_mapping: np.ndarray) -> tuple[np.ndarray, int]:
    """Compact hub-id cluster labels to the contiguous range ``0..K-1``.

    The parallel algorithm stores the *hub vertex id* in ``map[v]``; this is
    the final sequential pass described in the paper that detects vertices
    with ``map[v] == v`` and renumbers all entries.
    """
    unique_ids, compacted = np.unique(raw_mapping, return_inverse=True)
    return compacted.astype(np.int64), int(unique_ids.shape[0])


def parallel_collapse_once(graph: CSRGraph, *, hub_rule: bool = True) -> tuple[np.ndarray, int]:
    """Vectorised single-level collapse with hub-priority semantics.

    Every vertex chooses, among its neighbours that are allowed to absorb it
    (hub rule) and that dominate it in degree order (degree, then id — the
    same priority the sequential pass uses), the highest-priority neighbour
    as its *leader*.  A vertex with no dominating eligible neighbour is its
    own leader.  A leader claim is only honoured when the chosen leader is a
    root (its own leader); otherwise the vertex falls back to being a root —
    exactly the "skip the candidate on lock failure" behaviour of the
    threaded code.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64), 0
    degrees = graph.degrees.astype(np.int64)
    delta = graph.num_edges / max(n, 1)
    arcs = graph.edge_array()
    src, dst = arcs[:, 0], arcs[:, 1]

    # Priority: higher degree wins; ties broken by smaller vertex id.  Encode
    # as a single sortable key so argmax over neighbours is vectorisable.
    priority = degrees * np.int64(n) + (np.int64(n) - 1 - np.arange(n, dtype=np.int64))

    # Eligibility of the arc (src <- dst means "dst could lead src"):
    # the hub rule requires deg(leader) <= delta or deg(follower) <= delta.
    if hub_rule:
        eligible = (degrees[dst] <= delta) | (degrees[src] <= delta)
    else:
        eligible = np.ones(src.shape[0], dtype=bool)
    # The leader must strictly dominate the follower in priority so that the
    # relation is acyclic (mirrors "hubs are processed first").
    dominates = priority[dst] > priority[src]
    valid = eligible & dominates

    leader = np.arange(n, dtype=np.int64)
    if np.any(valid):
        vsrc = src[valid]
        vdst = dst[valid]
        # For each follower pick the highest-priority dominating neighbour:
        # sort arcs by (follower, leader priority) and take the last per group.
        order = np.lexsort((priority[vdst], vsrc))
        vsrc_sorted = vsrc[order]
        vdst_sorted = vdst[order]
        # Last occurrence per follower has the max leader priority.
        is_last = np.ones(vsrc_sorted.shape[0], dtype=bool)
        is_last[:-1] = vsrc_sorted[:-1] != vsrc_sorted[1:]
        leader[vsrc_sorted[is_last]] = vdst_sorted[is_last]

    # Honour a claim only if the chosen leader is itself a root; otherwise
    # the follower becomes a root (skip-on-contention).
    chained = leader[leader] != leader
    follower_ids = np.arange(n, dtype=np.int64)
    leader = np.where(chained, follower_ids, leader)

    mapping, num_clusters = compact_mapping(leader)
    return mapping, num_clusters


def simulated_threaded_collapse(graph: CSRGraph, num_threads: int = 4, *,
                                hub_rule: bool = True, chunk_size: int = 64,
                                seed: int = 0) -> tuple[np.ndarray, int]:
    """Deterministic simulation of the τ-thread lock-per-entry algorithm.

    The vertex order (decreasing degree) is split into chunks that are dealt
    to ``num_threads`` virtual threads round-robin (the paper's dynamic
    scheduling with small batches).  Threads take turns executing one vertex
    at a time; a thread that finds its candidate already mapped (lock held)
    skips it, exactly like the real implementation.  The result is a valid
    coarsening whose quality can be compared against the sequential one.
    """
    n = graph.num_vertices
    degrees = graph.degrees
    delta = graph.num_edges / max(n, 1)
    order = np.argsort(-degrees, kind="stable")
    mapping = np.full(n, -1, dtype=np.int64)
    xadj, adj = graph.xadj, graph.adj

    # Build per-thread work queues (round-robin chunks of the global order).
    queues: list[list[int]] = [[] for _ in range(max(1, num_threads))]
    for chunk_start in range(0, n, chunk_size):
        thread_id = (chunk_start // chunk_size) % max(1, num_threads)
        queues[thread_id].extend(int(v) for v in order[chunk_start:chunk_start + chunk_size])
    cursors = [0] * len(queues)

    active = True
    while active:
        active = False
        for t, queue in enumerate(queues):
            if cursors[t] >= len(queue):
                continue
            active = True
            v = queue[cursors[t]]
            cursors[t] += 1
            if mapping[v] != -1:
                continue
            #

            mapping[v] = v  # hub-id labelling, compacted later
            deg_v_ok = degrees[v] <= delta
            for idx in range(xadj[v], xadj[v + 1]):
                u = int(adj[idx])
                if mapping[u] != -1:
                    continue  # lock held by another (virtual) thread
                if hub_rule and not (deg_v_ok or degrees[u] <= delta):
                    continue
                mapping[u] = v
    mapping[mapping == -1] = np.flatnonzero(mapping == -1)
    return compact_mapping(mapping)


def parallel_multi_edge_collapse(graph: CSRGraph, *, threshold: int = DEFAULT_THRESHOLD,
                                 max_levels: int = 32, hub_rule: bool = True) -> CoarseningResult:
    """Full multilevel coarsening using the vectorised parallel pass."""
    graphs = [graph]
    mappings: list[np.ndarray] = []
    times: list[float] = []
    current = graph
    level = 0
    while current.num_vertices > threshold and level < max_levels:
        t0 = perf_counter()
        mapping, num_clusters = parallel_collapse_once(current, hub_rule=hub_rule)
        if num_clusters >= current.num_vertices:
            break
        nxt = coarsen_graph(current, mapping, num_clusters,
                            name=f"{graph.name}_L{level + 1}")
        times.append(perf_counter() - t0)
        graphs.append(nxt)
        mappings.append(mapping)
        current = nxt
        level += 1
    return CoarseningResult(graphs=graphs, mappings=mappings, level_times=times)
