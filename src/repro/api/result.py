"""Canonical embedding result — the one output type every tool adapts into.

Each backend in this repository historically returned its own result object
(:class:`~repro.embedding.gosh.GoshResult`,
:class:`~repro.embedding.verse.VerseResult`,
:class:`~repro.baselines.mile.MileResult`,
:class:`~repro.baselines.graphvite_like.GraphViteResult`) with incompatible
fields.  :class:`EmbeddingResult` is the uniform envelope the
:class:`~repro.api.protocol.EmbeddingTool` protocol returns: the embedding
matrix plus a ``timings`` dict (stage name -> seconds), a ``stats`` dict of
per-stage counters, and tool ``metadata``.  The native result object stays
reachable through ``raw`` for callers that need backend-specific detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..large.scheduler import LargeGraphStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..baselines.graphvite_like import GraphViteResult
    from ..baselines.mile import MileResult
    from ..embedding.gosh import GoshResult
    from ..embedding.verse import VerseResult

__all__ = ["EmbeddingResult", "summarize_large_graph_stats"]


def summarize_large_graph_stats(stats: list[LargeGraphStats]) -> dict[str, object]:
    """Aggregate partitioned-engine stats across every level that used it.

    Returns an empty dict when the engine never ran, otherwise totals over all
    levels plus the per-level partition counts (the ``K`` column of Table 9).
    """
    if not stats:
        return {}
    return {
        "levels": len(stats),
        "parts_per_level": [s.num_parts for s in stats],
        "rotations": sum(s.rotations for s in stats),
        "kernels": sum(s.kernels for s in stats),
        "positive_samples": sum(s.positive_samples for s in stats),
        "submatrix_switches": sum(s.submatrix_switches for s in stats),
        "seconds": round(sum(s.seconds for s in stats), 4),
        "execution_mode": stats[0].execution_mode,
        "pool_stall_s": round(sum(s.pool_stall_seconds for s in stats), 4),
        "pool_produce_s": round(sum(s.pool_produce_seconds for s in stats), 4),
        "max_ready_pools": max(s.max_ready_pools for s in stats),
        "oom_retries": sum(s.oom_retries for s in stats),
        "degradations": [d for s in stats for d in s.degradations],
    }


@dataclass
class EmbeddingResult:
    """Uniform output of any :class:`~repro.api.protocol.EmbeddingTool`.

    Attributes
    ----------
    embedding:
        The ``(|V|, d)`` embedding matrix.
    tool:
        Registry name of the tool that produced it (``"gosh-fast"``, …).
    graph:
        Name of the embedded graph.
    seconds:
        End-to-end wall-clock of the ``embed`` call.
    timings:
        Stage name -> seconds (e.g. ``coarsening``, ``training``).
    stats:
        Per-stage counters: coarsening level sizes, epochs per level,
        aggregated partitioned-engine totals, hierarchy-cache hit flag, …
    metadata:
        Tool configuration echo (config name, dim, seed, epochs, …).
    raw:
        The backend-native result object, for backend-specific callers.
    """

    embedding: np.ndarray
    tool: str
    graph: str
    seconds: float
    timings: dict[str, float] = field(default_factory=dict)
    stats: dict[str, object] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)
    raw: object | None = None

    @property
    def num_vertices(self) -> int:
        return int(self.embedding.shape[0])

    @property
    def dim(self) -> int:
        return int(self.embedding.shape[1])

    def summary(self) -> dict[str, object]:
        """A flat row for table printing."""
        row: dict[str, object] = {
            "tool": self.tool,
            "graph": self.graph,
            "shape": f"{self.num_vertices}x{self.dim}",
            "seconds": round(self.seconds, 4),
        }
        row.update({f"{k}_s": round(v, 4) for k, v in self.timings.items()})
        return row

    # ------------------------------------------------------------------ #
    # Adapters from the backend-native result objects
    # ------------------------------------------------------------------ #
    @classmethod
    def from_gosh(cls, result: "GoshResult", *, tool: str, graph: str,
                  seconds: float | None = None,
                  hierarchy_cache_hit: bool | None = None) -> "EmbeddingResult":
        """Adapt a :class:`GoshResult`."""
        stats: dict[str, object] = {
            "levels": result.num_levels,
            "level_sizes": result.hierarchy.level_sizes(),
            "epochs_per_level": list(result.epochs_per_level),
            "in_memory_levels": len(result.level_stats),
            "large_graph": summarize_large_graph_stats(result.large_graph_stats),
        }
        if hierarchy_cache_hit is not None:
            stats["hierarchy_cache_hit"] = hierarchy_cache_hit
        if result.checkpoints_saved:
            stats["checkpoints_saved"] = result.checkpoints_saved
        if result.resumed_from is not None:
            stats["resumed_from"] = dict(result.resumed_from)
        return cls(
            embedding=result.embedding,
            tool=tool,
            graph=graph,
            seconds=result.total_seconds if seconds is None else seconds,
            timings={"coarsening": result.coarsening_seconds,
                     "training": result.training_seconds},
            stats=stats,
            metadata=result.config.metadata_echo(),
            raw=result,
        )

    @classmethod
    def from_verse(cls, result: "VerseResult", *, tool: str, graph: str,
                   seconds: float | None = None,
                   metadata: dict[str, object] | None = None) -> "EmbeddingResult":
        return cls(
            embedding=result.embedding,
            tool=tool,
            graph=graph,
            seconds=result.seconds if seconds is None else seconds,
            timings={"training": result.seconds},
            stats={"epochs": result.epochs},
            metadata=metadata or {},
            raw=result,
        )

    @classmethod
    def from_mile(cls, result: "MileResult", *, tool: str, graph: str,
                  seconds: float | None = None,
                  metadata: dict[str, object] | None = None) -> "EmbeddingResult":
        return cls(
            embedding=result.embedding,
            tool=tool,
            graph=graph,
            seconds=result.total_seconds if seconds is None else seconds,
            timings={
                "coarsening": result.coarsening_seconds,
                "training": result.training_seconds,
                "refinement": result.refinement_seconds,
            },
            stats={
                "levels": result.hierarchy.num_levels,
                "level_sizes": result.hierarchy.level_sizes(),
            },
            metadata=metadata or {},
            raw=result,
        )

    @classmethod
    def from_graphvite(cls, result: "GraphViteResult", *, tool: str, graph: str,
                       seconds: float | None = None,
                       metadata: dict[str, object] | None = None) -> "EmbeddingResult":
        return cls(
            embedding=result.embedding,
            tool=tool,
            graph=graph,
            seconds=result.seconds if seconds is None else seconds,
            timings={"training": result.seconds},
            stats={"episodes": result.episodes},
            metadata=metadata or {},
            raw=result,
        )
