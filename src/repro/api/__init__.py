"""repro.api — one interface over every embedding backend.

The subsystem has four pieces:

* :mod:`repro.api.protocol` — the :class:`EmbeddingTool` protocol
  (``name``, ``describe()``, ``prepare(graph)``, ``embed(graph, ...)``) and
  structured :class:`ProgressEvent` callbacks.
* :mod:`repro.api.result` — the canonical :class:`EmbeddingResult` envelope
  every backend's native result adapts into.
* :mod:`repro.api.registry` — the global name -> tool registry
  (:func:`get_tool`, :func:`available_tools`, :func:`register_tool`,
  entry-point-style :func:`register_lazy`).
* :mod:`repro.api.service` — :class:`EmbeddingService`, the serving-oriented
  facade: batched requests, a shared coarsening-hierarchy cache, progress
  reporting, and serving counters.

Quickstart::

    from repro.api import available_tools, get_tool

    tool = get_tool("gosh-normal", dim=32, epoch_scale=0.1)
    result = tool.embed(graph)
    print(result.summary(), available_tools())
"""

from .cache import HierarchyCache, hierarchy_cache_key
from .protocol import EmbeddingTool, ProgressCallback, ProgressEvent, as_embedder
from .registry import (
    UnknownToolError,
    available_tools,
    get_tool,
    register_lazy,
    register_tool,
    tool_descriptions,
    unregister_tool,
)
from .result import EmbeddingResult, summarize_large_graph_stats
from .service import (
    BatchFailure,
    EmbedRequest,
    EmbeddingService,
    QueryRequest,
    QueryResponse,
)
from .tools import (
    BaseEmbeddingTool,
    GoshTool,
    GraphViteTool,
    MileTool,
    VerseTool,
)

__all__ = [
    "HierarchyCache",
    "hierarchy_cache_key",
    "EmbeddingTool",
    "ProgressCallback",
    "ProgressEvent",
    "as_embedder",
    "UnknownToolError",
    "available_tools",
    "get_tool",
    "register_lazy",
    "register_tool",
    "tool_descriptions",
    "unregister_tool",
    "EmbeddingResult",
    "summarize_large_graph_stats",
    "EmbedRequest",
    "BatchFailure",
    "QueryRequest",
    "QueryResponse",
    "EmbeddingService",
    "BaseEmbeddingTool",
    "GoshTool",
    "GraphViteTool",
    "MileTool",
    "VerseTool",
]
