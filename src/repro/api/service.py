"""`EmbeddingService` — the serving-oriented entry point over the registry.

The service is what a request-handling deployment of this system would sit
behind: callers submit embed (or embed-and-evaluate) requests by tool *name*,
and the service

* resolves tools through the global registry, memoising one configured
  instance per name,
* shares one :class:`~repro.api.cache.HierarchyCache` across every GOSH
  variant, so repeated runs on the same graph — a fast/normal/slow sweep, or
  the same graph arriving in many requests — pay for MultiEdgeCollapse once,
* processes batches of :class:`EmbedRequest` objects sequentially while
  reporting structured progress through callbacks,
* serves k-NN queries through :meth:`EmbeddingService.query` — the
  embed-if-missing facade over the :class:`~repro.store.EmbeddingStore` and
  :class:`~repro.query.QueryEngine` — microbatching concurrent
  :class:`QueryRequest` batches that hit the same engine,
* keeps serving counters (requests served, cache hit rate, store and query
  stats) for observability.

Example::

    from repro.api import EmbeddingService

    service = EmbeddingService(dim=32, epoch_scale=0.05, store="embeddings/")
    first = service.embed("gosh-normal", graph)      # coarsens
    second = service.embed("gosh-fast", graph)       # reuses the hierarchy
    assert second.stats["hierarchy_cache_hit"]
    answer = service.query("gosh-fast", graph, vertices=[0, 7], k=5)
    assert answer.store_hit                          # served off the store
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..graph.csr import CSRGraph
from .cache import HierarchyCache
from .protocol import EmbeddingTool, ProgressCallback
from .registry import get_tool
from .result import EmbeddingResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..eval.link_prediction import LinkPredictionResult
    from ..gpu.device import SimulatedDevice
    from ..query.engine import QueryEngine, QueryResult
    from ..store.store import EmbeddingStore, StoreEntry

__all__ = ["EmbedRequest", "BatchFailure", "QueryRequest", "QueryResponse",
           "EmbeddingService"]


@dataclass
class EmbedRequest:
    """One unit of service work: embed ``graph`` with the named tool.

    ``evaluate=True`` additionally runs the link-prediction pipeline on the
    result (the embedding is then trained on the 80% split, as in the paper).
    """

    tool: str | EmbeddingTool
    graph: CSRGraph
    seed: int | None = None
    evaluate: bool = False
    classifier: str = "logistic"


@dataclass
class BatchFailure:
    """Recorded in place of a result when one request of a batch fails.

    Batches are isolated per request: a failing request (e.g. GraphVite's
    expected :class:`~repro.gpu.device.DeviceMemoryError` on a graph that
    does not fit the device) must not abort the batch or discard the results
    that already completed.  ``error`` is the exception the tool raised.
    Detect failures with ``isinstance(entry, BatchFailure)``.
    """

    request: EmbedRequest
    error: Exception

    @property
    def tool(self) -> str:
        name = self.request.tool
        return name if isinstance(name, str) else name.name


@dataclass
class QueryRequest:
    """One k-NN unit of service work against the named tool's embedding.

    Exactly one of ``vertices`` (ids into the stored matrix; ``exclude_self``
    applies) or ``vectors`` (raw ``(d,)``/``(Q, d)`` query vectors) must be
    set.  ``metric``/``backend`` of ``None`` inherit the service defaults.
    ``vertex_range`` restricts candidate rows to ``[lo, hi)`` — the sharded
    serving tier's routing primitive; score bits for surviving rows match an
    unranged run exactly.
    """

    tool: str | EmbeddingTool
    graph: CSRGraph
    vertices: "np.ndarray | list[int] | int | None" = None
    vectors: "np.ndarray | None" = None
    k: int = 10
    metric: str | None = None
    backend: str | None = None
    exclude_self: bool = True
    config_hash: str | None = None    # pin a specific store lineage
    vertex_range: "tuple[int, int] | None" = None
    # Optional tracing context ({"id", "parent"[, "span"]}): carried for
    # observability only, never consulted by the query path itself.
    trace: "dict[str, str] | None" = None

    def __post_init__(self) -> None:
        if (self.vertices is None) == (self.vectors is None):
            raise ValueError("set exactly one of vertices= or vectors=")
        if self.vertex_range is not None:
            lo, hi = int(self.vertex_range[0]), int(self.vertex_range[1])
            if not 0 <= lo < hi:
                raise ValueError(
                    f"vertex_range [{lo}, {hi}) must satisfy 0 <= lo < hi")
            self.vertex_range = (lo, hi)

    @property
    def num_queries(self) -> int:
        if self.vectors is not None:
            return int(np.atleast_2d(np.asarray(self.vectors)).shape[0])
        return int(np.atleast_1d(np.asarray(self.vertices)).shape[0])


@dataclass
class QueryResponse:
    """A :class:`~repro.query.engine.QueryResult` plus its serving provenance.

    ``store_hit`` is False when the request triggered the embed-if-missing
    path (the graph had no stored embedding for the tool, so the service
    embedded and saved it first); ``entry`` is the store version that
    answered.
    """

    result: "QueryResult"
    entry: "StoreEntry"
    store_hit: bool

    # Convenience pass-throughs so callers can treat the response as a result.
    @property
    def ids(self) -> np.ndarray:
        return self.result.ids

    @property
    def scores(self) -> np.ndarray:
        return self.result.scores


@dataclass(frozen=True)
class _EngineKey:
    """Identity of a memoised QueryEngine: store version x query settings."""

    path: str
    metric: str
    backend: str | None = field(default=None)


class EmbeddingService:
    """Batched, cached, registry-backed facade over every embedding tool."""

    def __init__(self, *, dim: int | None = None, epoch_scale: float = 1.0,
                 device: "SimulatedDevice | None" = None, seed: int = 0,
                 cache_entries: int = 8,
                 progress: ProgressCallback | None = None,
                 store: "EmbeddingStore | str | os.PathLike | None" = None,
                 metric: str = "cosine",
                 query_backend: str | None = None,
                 query_block_rows: int = 4096,
                 engine_cache_entries: int = 8,
                 checkpoint_every_rotations: int | None = None,
                 auto_resume: bool = True):
        self.dim = dim
        self.epoch_scale = epoch_scale
        self.device = device
        self.seed = seed
        self.progress = progress
        self.hierarchy_cache = HierarchyCache(max_entries=cache_entries)
        self.requests_served = 0
        self.requests_failed = 0
        self.queries_served = 0
        self.microbatches = 0
        self.metric = metric
        self.query_backend = query_backend
        self.query_block_rows = query_block_rows
        # Validate the query knobs eagerly: discovering a bad block size or
        # metric only after an embed-if-missing has spent minutes training
        # would waste the whole run.
        from ..query.backends import METRICS

        if engine_cache_entries < 1:
            raise ValueError("engine_cache_entries must be >= 1")
        if query_block_rows < 1:
            raise ValueError("query_block_rows must be >= 1")
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; options: {', '.join(METRICS)}")
        self.engine_cache_entries = engine_cache_entries
        self.store = self._coerce_store(store)
        self._tools: dict[str, EmbeddingTool] = {}
        # LRU-bounded like the hierarchy cache: engines hold mmaps open, and
        # an unbounded memo would pin shard files of versions gc() removed.
        self._engines: "OrderedDict[_EngineKey, QueryEngine]" = OrderedDict()
        # (fingerprint, tool, pinned config hash) -> resolved store entry, so
        # serving does not re-scan manifests on every request of a batch.
        # LRU-bounded like the engine cache (entries pin their manifests).
        self._entries: "OrderedDict[tuple[str, str, str | None], StoreEntry]" = OrderedDict()
        # Counters of engines that aged out of the LRU, so stats() stays
        # cumulative instead of shrinking on eviction.
        self._evicted_batches = 0
        self._evicted_rows_scored = 0
        self._evicted_query_seconds = 0.0
        self.engine_cache_hits = 0
        self.engine_cache_misses = 0
        self.engine_cache_evictions = 0
        # The resident server calls query_batch from a worker thread while
        # its stats verb reads the snapshot from the event loop; one lock
        # makes both entries safe without callers coordinating.
        self._serving_lock = threading.RLock()
        # Crash safety for store-backed embeds: when a store is attached,
        # service-resolved GOSH tools checkpoint into it and auto-resume
        # (see GoshTool.configure_checkpointing).
        self.checkpoint_every_rotations = checkpoint_every_rotations
        self.auto_resume = auto_resume
        # Single-flight embed-on-miss: concurrent queries that miss the same
        # (graph, tool) lineage must not each train an embedding.  One caller
        # owns the miss; the rest wait on a per-lineage latch and re-resolve.
        self._miss_lock = threading.Lock()
        self._inflight_embeds: dict[tuple[str, str], threading.Event] = {}
        self.embeds_deduped = 0

    @staticmethod
    def _coerce_store(store: "EmbeddingStore | str | os.PathLike | None",
                      ) -> "EmbeddingStore | None":
        if store is None:
            return None
        from ..store.store import EmbeddingStore

        if isinstance(store, EmbeddingStore):
            return store
        return EmbeddingStore(store)

    # ------------------------------------------------------------------ #
    # Tool resolution
    # ------------------------------------------------------------------ #
    def tool(self, name: str | EmbeddingTool) -> EmbeddingTool:
        """Resolve (and memoise) a configured tool, wiring in the shared cache.

        Caller-supplied tool instances are used as-is — their cache state
        (pre-warmed or deliberately absent) belongs to the caller; only tools
        the service resolves itself join the shared hierarchy cache.
        """
        if not isinstance(name, str):
            return name
        key = name.strip().lower()
        if key not in self._tools:
            tool = get_tool(key, dim=self.dim, epoch_scale=self.epoch_scale,
                            device=self.device, seed=self.seed)
            # GOSH variants expose `hierarchy_cache`; all of them share ours
            # so a hierarchy built for one configuration serves every other
            # one with the same coarsening knobs.
            if hasattr(tool, "hierarchy_cache") and tool.hierarchy_cache is None:
                tool.hierarchy_cache = self.hierarchy_cache
            # Store-backed services get crash-safe embeds: GOSH tools
            # checkpoint into the same store and resume interrupted runs.
            if self.store is not None and hasattr(tool, "configure_checkpointing"):
                tool.configure_checkpointing(
                    self.store,
                    every_rotations=self.checkpoint_every_rotations,
                    auto_resume=self.auto_resume)
            self._tools[key] = tool
        return self._tools[key]

    def prepare(self, name: str | EmbeddingTool, graph: CSRGraph) -> None:
        """Warm the tool (and the shared hierarchy cache) for ``graph``."""
        self.tool(name).prepare(graph)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def embed(self, name: str | EmbeddingTool, graph: CSRGraph, *,
              seed: int | None = None,
              progress: ProgressCallback | None = None) -> EmbeddingResult:
        """Embed one graph with the named tool.

        The result is stamped with ``metadata["graph_fingerprint"]`` so it can
        be handed to an :class:`~repro.store.EmbeddingStore` without carrying
        the graph alongside it.
        """
        tool = self.tool(name)
        result = tool.embed(graph, seed=seed, progress=progress or self.progress)
        result.metadata.setdefault("graph_fingerprint", graph.fingerprint())
        self.requests_served += 1
        return result

    def evaluate(self, name: str | EmbeddingTool, graph: CSRGraph, *,
                 seed: int | None = None, classifier: str = "logistic",
                 ) -> "LinkPredictionResult":
        """Run the link-prediction pipeline around the named tool."""
        from ..eval.link_prediction import run_link_prediction

        tool = self.tool(name)
        # run_link_prediction forwards its seed to the tool's embed call, so
        # a per-request seed governs the embedding as well as the split.
        result = run_link_prediction(graph, tool, classifier=classifier,
                                     seed=self.seed if seed is None else seed)
        self.requests_served += 1
        return result

    def embed_batch(self, requests: Iterable[EmbedRequest],
                    ) -> list[EmbeddingResult | "LinkPredictionResult | BatchFailure"]:
        """Process a batch of requests in order, isolating failures.

        Requests on the same graph share cached hierarchies, so a batch that
        sweeps GOSH configurations over one graph coarsens it exactly once.

        Each request is error-isolated: a failing request (e.g. GraphVite's
        expected ``DeviceMemoryError`` on an over-budget graph) contributes a
        :class:`BatchFailure` entry at its position and the batch continues —
        completed results are never discarded.  Tool *resolution* stays
        outside the isolation: an unknown tool name or invalid backend option
        is a programming error in the batch itself and still raises.
        """
        results: list[EmbeddingResult | LinkPredictionResult | BatchFailure] = []
        for request in requests:
            tool = self.tool(request.tool)
            try:
                if request.evaluate:
                    results.append(self.evaluate(tool, request.graph,
                                                 seed=request.seed,
                                                 classifier=request.classifier))
                else:
                    results.append(self.embed(tool, request.graph,
                                              seed=request.seed))
            except Exception as exc:
                self.requests_failed += 1
                results.append(BatchFailure(request=request, error=exc))
        return results

    # ------------------------------------------------------------------ #
    # Query serving (embed-if-missing -> store -> query)
    # ------------------------------------------------------------------ #
    def _require_store(self) -> "EmbeddingStore":
        if self.store is None:
            raise ValueError(
                "query serving is store-backed: construct the service with "
                "store=<dir or EmbeddingStore> to enable EmbeddingService.query")
        return self.store

    def ensure_stored(self, name: str | EmbeddingTool, graph: CSRGraph, *,
                      config_hash: str | None = None,
                      ) -> "tuple[StoreEntry, bool]":
        """Return ``(entry, store_hit)`` for the tool/graph pair.

        On a miss the graph is embedded and the result saved as the lineage's
        next version — the "embed-if-missing" half of :meth:`query`.  A store
        entry only counts as a hit when it is *servable* under this service's
        configuration (matching embedding dimension): an entry trained with
        different settings is treated as missing rather than silently served.
        A pinned ``config_hash`` means "serve exactly this validated
        lineage": when no such lineage exists the call *raises* — embedding
        under the service's own configuration would hand back a different
        lineage than the one pinned.  Resolved entries are memoised per
        (graph, tool, pin) and re-validated against the version directory,
        so batches do not re-scan manifests but a gc'd version is noticed
        and re-resolved instead of served blind.

        Misses are **single-flight**: concurrent callers missing the same
        (graph, tool) lineage elect one owner to embed; the rest wait on a
        per-lineage latch (counted in ``embeds_deduped``) and serve the
        owner's saved entry.  If the owner fails, a waiter claims ownership
        and retries, so a transient failure does not strand the queue.
        """
        from ..store.store import StoreError

        store = self._require_store()
        tool = self.tool(name)
        fingerprint = graph.fingerprint()
        key = (fingerprint, tool.name, config_hash)
        flight = (fingerprint, tool.name)
        while True:
            with self._serving_lock:
                entry = self._resolve_entry_locked(store, tool, fingerprint,
                                                   config_hash)
            if entry is not None:
                return entry, True
            if config_hash is not None:
                raise StoreError(
                    f"no servable entry for pinned config {config_hash!r} "
                    f"(graph {fingerprint[:12]}…, tool {tool.name!r}); drop the pin "
                    "to embed-if-missing under the service configuration")
            with self._miss_lock:
                latch = self._inflight_embeds.get(flight)
                if latch is None:
                    self._inflight_embeds[flight] = threading.Event()
                else:
                    self.embeds_deduped += 1
            if latch is not None:
                # Another thread owns this miss: wait it out, then loop to
                # re-resolve (or claim ownership if the owner failed).
                latch.wait()
                continue
            try:
                result = self.embed(tool, graph)
                saved = store.save(result, fingerprint=fingerprint)
                with self._serving_lock:
                    self._entries[key] = saved
                    self._trim_entry_memo()
                # The run landed durably; its checkpoint lineage is spent.
                if hasattr(tool, "sweep_checkpoints"):
                    tool.sweep_checkpoints(fingerprint)
                return saved, False
            finally:
                with self._miss_lock:
                    done = self._inflight_embeds.pop(flight, None)
                if done is not None:
                    done.set()

    def _resolve_entry_locked(self, store: "EmbeddingStore", tool: EmbeddingTool,
                              fingerprint: str, config_hash: str | None,
                              ) -> "StoreEntry | None":
        """Memoised store lookup (no embed); call under the serving lock."""
        key = (fingerprint, tool.name, config_hash)
        cached = self._entries.get(key)
        if cached is not None:
            if cached.path.is_dir():
                self._entries.move_to_end(key)
                return cached
            # The version vanished underneath us (gc or external cleanup):
            # drop it and any engines still mmapping its shards.
            del self._entries[key]
            for stale in [k for k in self._engines if k.path == str(cached.path)]:
                self._drop_engine(stale)
        entry = store.latest(
            fingerprint, tool.name, config_hash=config_hash,
            # Filter before picking newest: a newer entry from an
            # incompatible lineage must not mask an older servable one
            # (that would re-embed on every alternation between services).
            where=lambda e: self.dim is None or e.shape[1] == self.dim)
        if entry is not None:
            self._entries[key] = entry
            self._trim_entry_memo()
        return entry

    #: Resolved-entry memo bound; entries are small (one manifest each) but
    #: a long-lived service over many graphs must not grow without limit.
    _ENTRY_MEMO_MAX = 256

    def _trim_entry_memo(self) -> None:
        while len(self._entries) > self._ENTRY_MEMO_MAX:
            self._entries.popitem(last=False)

    def _engine_for(self, entry: "StoreEntry", *, metric: str | None,
                    backend: str | None) -> "QueryEngine":
        """Memoise one engine per (store version, metric, backend).

        The matrix is loaded memory-mapped, so engines over large stored
        embeddings cost address space, not resident copies.
        """
        from ..query.engine import QueryEngine

        store = self._require_store()
        key = _EngineKey(path=str(entry.path), metric=metric or self.metric,
                         backend=backend or self.query_backend)
        if key not in self._engines:
            self.engine_cache_misses += 1
            loaded = store.load_entry(entry, mmap=True)
            self._engines[key] = QueryEngine(
                loaded.embedding, metric=key.metric, backend=key.backend,
                block_rows=self.query_block_rows)
        else:
            self.engine_cache_hits += 1
            self._engines.move_to_end(key)
        return self._engines[key]

    def _drop_engine(self, key: _EngineKey) -> None:
        """Evict an engine, folding its counters into the cumulative totals."""
        engine = self._engines.pop(key)
        self.engine_cache_evictions += 1
        self._evicted_batches += engine.batches_served
        self._evicted_rows_scored += engine.rows_scored
        self._evicted_query_seconds += engine.query_seconds

    def _enforce_engine_cap(self) -> None:
        """LRU-evict down to ``engine_cache_entries``.

        Runs after a batch finishes serving (not inside :meth:`_engine_for`):
        evicting mid-batch would fold an engine's counters while the batch
        still holds a reference and serves through it, losing those
        increments from :meth:`stats`.
        """
        while len(self._engines) > self.engine_cache_entries:
            self._drop_engine(next(iter(self._engines)))

    def query(self, name: str | EmbeddingTool, graph: CSRGraph, *,
              vertices: "np.ndarray | list[int] | int | None" = None,
              vectors: "np.ndarray | None" = None,
              k: int = 10, metric: str | None = None,
              backend: str | None = None,
              exclude_self: bool = True,
              config_hash: str | None = None,
              vertex_range: "tuple[int, int] | None" = None) -> QueryResponse:
        """Answer a k-NN request against the tool's embedding of ``graph``.

        Embed-if-missing: when the store has no entry for the (graph, tool)
        pair the service embeds and saves it first, then serves the query
        from the stored (memory-mapped) matrix like every later request.
        """
        responses = self.query_batch([QueryRequest(
            tool=name, graph=graph, vertices=vertices, vectors=vectors, k=k,
            metric=metric, backend=backend, exclude_self=exclude_self,
            config_hash=config_hash, vertex_range=vertex_range)])
        return responses[0]

    def query_batch(self, requests: Iterable[QueryRequest]) -> list[QueryResponse]:
        """Serve many k-NN requests, microbatching per engine.

        Concurrent requests that resolve to the same engine and settings
        (same graph, tool, metric, backend, k, query kind) are stacked into
        one backend call — one pass over the matrix answers all of them —
        and the answers are scattered back in request order.  Each response's
        ``result.seconds`` is the *shared* wall-clock of its microbatch (the
        requests were answered together; the time is not apportioned).

        Thread-safe entry point: store resolution (including a possible
        embed-on-miss, which single-flights per lineage) runs *before* the
        serving lock is taken, so a slow embed does not block concurrent
        queries or :meth:`stats`; only the scoring runs under the lock.
        """
        requests = list(requests)
        resolved = [self.ensure_stored(r.tool, r.graph, config_hash=r.config_hash)
                    for r in requests]
        with self._serving_lock:
            return self._query_batch_locked(requests, resolved)

    def _query_batch_locked(self, requests: list[QueryRequest],
                            resolved: "list[tuple[StoreEntry, bool]]",
                            ) -> list[QueryResponse]:
        from ..query.engine import QueryResult

        responses: list[QueryResponse | None] = [None] * len(requests)
        groups: dict[object, list[int]] = {}
        prepared: list[tuple["StoreEntry", bool, "QueryEngine"]] = []
        for i, request in enumerate(requests):
            entry, store_hit = resolved[i]
            engine = self._engine_for(entry, metric=request.metric,
                                      backend=request.backend)
            prepared.append((entry, store_hit, engine))
            by_vertex = request.vertices is not None
            group_key = (id(engine), request.k, by_vertex,
                         request.exclude_self if by_vertex else None,
                         request.vertex_range)
            groups.setdefault(group_key, []).append(i)
        for (engine_id, k, by_vertex, exclude_self, vertex_range), members in groups.items():
            engine = prepared[members[0]][2]
            if by_vertex:
                stacked = np.concatenate([
                    np.atleast_1d(np.asarray(requests[i].vertices, dtype=np.int64))
                    for i in members])
                merged = engine.nearest(stacked, k, exclude_self=bool(exclude_self),
                                        vertex_range=vertex_range)
            else:
                stacked = np.concatenate([
                    np.atleast_2d(np.asarray(requests[i].vectors, dtype=np.float32))
                    for i in members])
                merged = engine.query(stacked, k, vertex_range=vertex_range)
            self.microbatches += 1
            offset = 0
            for i in members:
                count = requests[i].num_queries
                result = QueryResult(
                    ids=merged.ids[offset:offset + count],
                    scores=merged.scores[offset:offset + count],
                    metric=merged.metric, backend=merged.backend,
                    seconds=merged.seconds)
                entry, store_hit, _ = prepared[i]
                responses[i] = QueryResponse(result=result, entry=entry,
                                             store_hit=store_hit)
                offset += count
                self.queries_served += count
        self._enforce_engine_cap()
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, object]:
        """One coherent serving snapshot across every subsystem the service
        touches: embed counters, the shared hierarchy cache, the store, the
        engine LRU (hits/misses/evictions), and the cumulative query-backend
        work.  This is the single read the resident server's ``stats`` verb
        reports — callers never have to poke the store, engines, and caches
        separately.  Taken under the serving lock, so it is consistent with
        concurrent :meth:`query_batch` calls from other threads.
        """
        with self._serving_lock:
            stats: dict[str, object] = {
                "requests_served": self.requests_served,
                "requests_failed": self.requests_failed,
                "tools_resolved": sorted(self._tools),
                "hierarchy_cache": self.hierarchy_cache.stats(),
                "queries_served": self.queries_served,
                "microbatches": self.microbatches,
                "embeds_deduped": self.embeds_deduped,
                "query_engines": len(self._engines),
                "engine_cache": {
                    "entries": len(self._engines),
                    "hits": self.engine_cache_hits,
                    "misses": self.engine_cache_misses,
                    "evictions": self.engine_cache_evictions,
                },
            }
            if self.store is not None:
                stats["store"] = self.store.stats()
            if self._engines or self._evicted_batches:
                stats["query"] = {
                    "batches": self._evicted_batches + sum(
                        e.batches_served for e in self._engines.values()),
                    "rows_scored": self._evicted_rows_scored + sum(
                        e.rows_scored for e in self._engines.values()),
                    "seconds": round(self._evicted_query_seconds + sum(
                        e.query_seconds for e in self._engines.values()), 4),
                }
            return stats
