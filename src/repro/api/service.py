"""`EmbeddingService` — the serving-oriented entry point over the registry.

The service is what a request-handling deployment of this system would sit
behind: callers submit embed (or embed-and-evaluate) requests by tool *name*,
and the service

* resolves tools through the global registry, memoising one configured
  instance per name,
* shares one :class:`~repro.api.cache.HierarchyCache` across every GOSH
  variant, so repeated runs on the same graph — a fast/normal/slow sweep, or
  the same graph arriving in many requests — pay for MultiEdgeCollapse once,
* processes batches of :class:`EmbedRequest` objects sequentially while
  reporting structured progress through callbacks,
* keeps serving counters (requests served, cache hit rate) for observability.

Example::

    from repro.api import EmbeddingService

    service = EmbeddingService(dim=32, epoch_scale=0.05)
    first = service.embed("gosh-normal", graph)      # coarsens
    second = service.embed("gosh-fast", graph)       # reuses the hierarchy
    assert second.stats["hierarchy_cache_hit"]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..graph.csr import CSRGraph
from .cache import HierarchyCache
from .protocol import EmbeddingTool, ProgressCallback
from .registry import get_tool
from .result import EmbeddingResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..eval.link_prediction import LinkPredictionResult
    from ..gpu.device import SimulatedDevice

__all__ = ["EmbedRequest", "BatchFailure", "EmbeddingService"]


@dataclass
class EmbedRequest:
    """One unit of service work: embed ``graph`` with the named tool.

    ``evaluate=True`` additionally runs the link-prediction pipeline on the
    result (the embedding is then trained on the 80% split, as in the paper).
    """

    tool: str | EmbeddingTool
    graph: CSRGraph
    seed: int | None = None
    evaluate: bool = False
    classifier: str = "logistic"


@dataclass
class BatchFailure:
    """Recorded in place of a result when one request of a batch fails.

    Batches are isolated per request: a failing request (e.g. GraphVite's
    expected :class:`~repro.gpu.device.DeviceMemoryError` on a graph that
    does not fit the device) must not abort the batch or discard the results
    that already completed.  ``error`` is the exception the tool raised.
    Detect failures with ``isinstance(entry, BatchFailure)``.
    """

    request: EmbedRequest
    error: Exception

    @property
    def tool(self) -> str:
        name = self.request.tool
        return name if isinstance(name, str) else name.name


class EmbeddingService:
    """Batched, cached, registry-backed facade over every embedding tool."""

    def __init__(self, *, dim: int | None = None, epoch_scale: float = 1.0,
                 device: "SimulatedDevice | None" = None, seed: int = 0,
                 cache_entries: int = 8,
                 progress: ProgressCallback | None = None):
        self.dim = dim
        self.epoch_scale = epoch_scale
        self.device = device
        self.seed = seed
        self.progress = progress
        self.hierarchy_cache = HierarchyCache(max_entries=cache_entries)
        self.requests_served = 0
        self.requests_failed = 0
        self._tools: dict[str, EmbeddingTool] = {}

    # ------------------------------------------------------------------ #
    # Tool resolution
    # ------------------------------------------------------------------ #
    def tool(self, name: str | EmbeddingTool) -> EmbeddingTool:
        """Resolve (and memoise) a configured tool, wiring in the shared cache.

        Caller-supplied tool instances are used as-is — their cache state
        (pre-warmed or deliberately absent) belongs to the caller; only tools
        the service resolves itself join the shared hierarchy cache.
        """
        if not isinstance(name, str):
            return name
        key = name.strip().lower()
        if key not in self._tools:
            tool = get_tool(key, dim=self.dim, epoch_scale=self.epoch_scale,
                            device=self.device, seed=self.seed)
            # GOSH variants expose `hierarchy_cache`; all of them share ours
            # so a hierarchy built for one configuration serves every other
            # one with the same coarsening knobs.
            if hasattr(tool, "hierarchy_cache") and tool.hierarchy_cache is None:
                tool.hierarchy_cache = self.hierarchy_cache
            self._tools[key] = tool
        return self._tools[key]

    def prepare(self, name: str | EmbeddingTool, graph: CSRGraph) -> None:
        """Warm the tool (and the shared hierarchy cache) for ``graph``."""
        self.tool(name).prepare(graph)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def embed(self, name: str | EmbeddingTool, graph: CSRGraph, *,
              seed: int | None = None,
              progress: ProgressCallback | None = None) -> EmbeddingResult:
        """Embed one graph with the named tool."""
        tool = self.tool(name)
        result = tool.embed(graph, seed=seed, progress=progress or self.progress)
        self.requests_served += 1
        return result

    def evaluate(self, name: str | EmbeddingTool, graph: CSRGraph, *,
                 seed: int | None = None, classifier: str = "logistic",
                 ) -> "LinkPredictionResult":
        """Run the link-prediction pipeline around the named tool."""
        from ..eval.link_prediction import run_link_prediction

        tool = self.tool(name)
        # run_link_prediction forwards its seed to the tool's embed call, so
        # a per-request seed governs the embedding as well as the split.
        result = run_link_prediction(graph, tool, classifier=classifier,
                                     seed=self.seed if seed is None else seed)
        self.requests_served += 1
        return result

    def embed_batch(self, requests: Iterable[EmbedRequest],
                    ) -> list[EmbeddingResult | "LinkPredictionResult | BatchFailure"]:
        """Process a batch of requests in order, isolating failures.

        Requests on the same graph share cached hierarchies, so a batch that
        sweeps GOSH configurations over one graph coarsens it exactly once.

        Each request is error-isolated: a failing request (e.g. GraphVite's
        expected ``DeviceMemoryError`` on an over-budget graph) contributes a
        :class:`BatchFailure` entry at its position and the batch continues —
        completed results are never discarded.  Tool *resolution* stays
        outside the isolation: an unknown tool name or invalid backend option
        is a programming error in the batch itself and still raises.
        """
        results: list[EmbeddingResult | LinkPredictionResult | BatchFailure] = []
        for request in requests:
            tool = self.tool(request.tool)
            try:
                if request.evaluate:
                    results.append(self.evaluate(tool, request.graph,
                                                 seed=request.seed,
                                                 classifier=request.classifier))
                else:
                    results.append(self.embed(tool, request.graph,
                                              seed=request.seed))
            except Exception as exc:
                self.requests_failed += 1
                results.append(BatchFailure(request=request, error=exc))
        return results

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, object]:
        return {
            "requests_served": self.requests_served,
            "requests_failed": self.requests_failed,
            "tools_resolved": sorted(self._tools),
            "hierarchy_cache": self.hierarchy_cache.stats(),
        }
