"""The :class:`EmbeddingTool` protocol and structured progress events.

Every embedding backend — GOSH in its Table 3 configurations, VERSE, MILE,
the GraphVite-like trainer, and any future tool — is exposed through one
interface so the harness, the CLI, the evaluation pipeline, and the
:class:`~repro.api.service.EmbeddingService` never special-case a backend:

* ``name`` / ``display_name`` — registry key and paper-table label.
* ``describe()`` — a one-line human description for ``repro-gosh tools``.
* ``prepare(graph)`` — optional warm-up (e.g. pre-building a coarsening
  hierarchy); tools without a preparation stage make it a no-op.
* ``embed(graph, *, device, seed, progress)`` — run the backend and return a
  canonical :class:`~repro.api.result.EmbeddingResult`.

Tools are also plain callables (``tool(graph) -> np.ndarray``) so existing
code written against the bare-callable embedder convention keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from ..graph.csr import CSRGraph
from .result import EmbeddingResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpu.device import SimulatedDevice

__all__ = ["EmbeddingTool", "ProgressEvent", "ProgressCallback", "as_embedder"]


@dataclass(frozen=True)
class ProgressEvent:
    """One structured progress report emitted during an ``embed`` call."""

    tool: str
    stage: str            # "prepare" | "coarsen" | "train" | "done" | ...
    graph: str
    detail: dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.tool}] {self.stage} on {self.graph}" + (f" ({extras})" if extras else "")


#: Callback receiving structured progress events.
ProgressCallback = Callable[[ProgressEvent], None]


@runtime_checkable
class EmbeddingTool(Protocol):
    """Uniform interface over every embedding backend."""

    name: str
    display_name: str

    def describe(self) -> str:
        """One-line human-readable description of the tool."""
        ...

    def prepare(self, graph: CSRGraph) -> None:
        """Optional warm-up for ``graph`` (no-op for stateless tools)."""
        ...

    def embed(self, graph: CSRGraph, *,
              device: "SimulatedDevice | None" = None,
              seed: int | None = None,
              progress: ProgressCallback | None = None) -> EmbeddingResult:
        """Embed ``graph`` and return the canonical result envelope."""
        ...

    def __call__(self, graph: CSRGraph) -> np.ndarray:
        """Bare-callable compatibility: return just the embedding matrix."""
        ...


def as_embedder(tool: "EmbeddingTool | Callable[[CSRGraph], np.ndarray] | str",
                *, seed: int | None = None) -> Callable[[CSRGraph], np.ndarray]:
    """Coerce a tool name, :class:`EmbeddingTool`, or bare callable into a
    ``graph -> embedding`` function.

    This is the single adaptation point used by the evaluation pipeline so it
    can accept any of the three spellings.  ``seed`` is forwarded to the
    tool's ``embed`` call (names and :class:`EmbeddingTool` instances), so a
    pipeline-level seed governs the embedding too; bare callables manage
    their own seeding.
    """
    if isinstance(tool, str):
        from .registry import get_tool

        resolved = get_tool(tool)
        return lambda graph: resolved.embed(graph, seed=seed).embedding
    embed = getattr(tool, "embed", None)
    if callable(embed) and hasattr(tool, "name"):
        return lambda graph: tool.embed(graph, seed=seed).embedding
    if callable(tool):
        return tool
    raise TypeError(f"cannot use {tool!r} as an embedder: expected a registered tool "
                    "name, an EmbeddingTool, or a callable graph -> embedding")
