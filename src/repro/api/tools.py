"""Built-in :class:`~repro.api.protocol.EmbeddingTool` wrappers.

One wrapper per backend — GOSH (parameterised by its Table 3 configuration),
VERSE, MILE, and the GraphVite-like trainer — each adapting the backend's
native config/result pair into the uniform protocol.  All wrappers accept the
same construction options so the registry can build any of them uniformly:

* ``dim`` — embedding dimension (``None`` keeps the backend default).
* ``epoch_scale`` — multiplies the epoch budget, the harness's twin-scale
  knob (relative tool comparisons stay fair while wall-clock stays small).
* ``device`` — simulated device; ignored by the CPU-only baselines.
* ``seed`` — RNG seed (``None`` keeps the backend default).
* ``kernel_backend`` — kernel layer for the GOSH update kernels
  (``"vectorized"`` default or ``"reference"``); accepted and ignored by the
  baselines, which have their own training loops.
* ``sampler_backend`` — host-side sampler producing the large-graph engine's
  positive pools (``"vectorized"`` default, ``"reference"``, or
  ``"degree_biased"``); accepted and ignored by the baselines for the same
  reason.
* ``execution_mode`` — large-graph pool-production scheduling
  (``"pipelined"`` default or ``"sequential"``); accepted and ignored by the
  baselines, which have no partitioned engine.

The module-level ``make_gosh_*`` factories are the lazy registration targets
for the four named GOSH variants (see :mod:`repro.api.registry`).
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter

import numpy as np

from ..baselines.graphvite_like import GraphViteConfig, graphvite_embed
from ..baselines.mile import MileConfig, mile_embed
from ..embedding.checkpoint import CHECKPOINT_SUFFIX, CheckpointPolicy, latest_checkpoint
from ..embedding.config import GoshConfig, get_config
from ..embedding.gosh import GoshEmbedder
from ..embedding.verse import VerseConfig, verse_embed
from ..gpu.backends import get_backend
from ..gpu.device import SimulatedDevice
from ..graph.csr import CSRGraph
from ..graph.sampler_backends import DEFAULT_SAMPLER_BACKEND, get_sampler_backend
from ..large.pipeline import DEFAULT_EXECUTION_MODE, normalize_execution_mode
from .cache import HierarchyCache
from .protocol import ProgressCallback, ProgressEvent
from .result import EmbeddingResult

__all__ = [
    "BaseEmbeddingTool",
    "GoshTool",
    "VerseTool",
    "MileTool",
    "GraphViteTool",
    "make_gosh_fast",
    "make_gosh_normal",
    "make_gosh_slow",
    "make_gosh_nocoarse",
]


def _check_ignored_kernel_backend(name: str | None) -> None:
    """Validate a ``kernel_backend`` option a tool accepts but does not use.

    The baselines have their own training loops, so the option is ignored —
    but an *unregistered* name must still error, otherwise the same typo
    that fails for GOSH tools silently passes here and mislabels benchmark
    numbers.  Raises ``ValueError`` to match ``GoshConfig.validate``.
    """
    if name is None:
        return
    try:
        get_backend(name)
    except KeyError as exc:
        raise ValueError(str(exc)) from exc


def _check_ignored_sampler_backend(name: str | None) -> None:
    """Same typo guard for the ``sampler_backend`` option (see above)."""
    if name is None:
        return
    try:
        get_sampler_backend(name)
    except KeyError as exc:
        raise ValueError(str(exc)) from exc


def _check_ignored_execution_mode(name: str | None) -> None:
    """Same typo guard for the ``execution_mode`` option (see above)."""
    if name is not None:
        normalize_execution_mode(name)


class BaseEmbeddingTool:
    """Shared plumbing for the built-in tools.

    Subclasses set ``name``/``display_name`` and implement :meth:`embed`;
    this base provides the no-op :meth:`prepare`, the bare-callable
    compatibility shim, and progress-event emission.
    """

    name: str = "tool"
    display_name: str = "Tool"

    def describe(self) -> str:  # pragma: no cover - overridden by subclasses
        return self.__class__.__doc__.splitlines()[0] if self.__class__.__doc__ else self.name

    def prepare(self, graph: CSRGraph) -> None:
        """Warm-up hook; stateless tools have nothing to do."""

    def embed(self, graph: CSRGraph, *, device: SimulatedDevice | None = None,
              seed: int | None = None,
              progress: ProgressCallback | None = None) -> EmbeddingResult:
        raise NotImplementedError

    def __call__(self, graph: CSRGraph) -> np.ndarray:
        return self.embed(graph).embedding

    def _emit(self, progress: ProgressCallback | None, stage: str,
              graph: CSRGraph, **detail: object) -> None:
        if progress is not None:
            progress(ProgressEvent(tool=self.name, stage=stage, graph=graph.name,
                                   detail=detail))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(name={self.name!r})"


# --------------------------------------------------------------------------- #
# GOSH
# --------------------------------------------------------------------------- #
#: Registry-name suffix for each Table 3 configuration name.
_GOSH_SUFFIX = {"fast": "fast", "normal": "normal", "slow": "slow",
                "no-coarsening": "nocoarse"}
_GOSH_DISPLAY = {"fast": "Gosh-fast", "normal": "Gosh-normal", "slow": "Gosh-slow",
                 "no-coarsening": "Gosh-NoCoarse"}


class GoshTool(BaseEmbeddingTool):
    """GOSH (Algorithm 2) in one of its Table 3 configurations.

    When a :class:`~repro.api.cache.HierarchyCache` is attached (directly or
    by the :class:`~repro.api.service.EmbeddingService`), stage 1 is skipped
    for graphs whose hierarchy is already cached.
    """

    def __init__(self, config: str | GoshConfig = "normal", *,
                 dim: int | None = None, epoch_scale: float = 1.0,
                 device: SimulatedDevice | None = None, seed: int | None = None,
                 kernel_backend: str | None = None,
                 sampler_backend: str | None = None,
                 execution_mode: str | None = None,
                 hierarchy_cache: HierarchyCache | None = None):
        cfg = get_config(config) if isinstance(config, str) else config
        cfg = cfg.scaled(epoch_scale, dim=dim)
        if seed is not None:
            cfg = cfg.with_(seed=seed)
        if kernel_backend is not None:
            cfg = cfg.with_(kernel_backend=kernel_backend)
        if sampler_backend is not None:
            cfg = cfg.with_(sampler_backend=sampler_backend)
        if execution_mode is not None:
            cfg = cfg.with_(execution_mode=execution_mode)
        cfg.validate()
        self.config = cfg
        self.device = device
        self.hierarchy_cache = hierarchy_cache
        suffix = _GOSH_SUFFIX.get(cfg.name, cfg.name)
        self.name = f"gosh-{suffix}"
        self.display_name = _GOSH_DISPLAY.get(cfg.name, f"Gosh-{cfg.name}")
        # Checkpointing is opt-in via configure_checkpointing (wired by the
        # EmbeddingService or the embed CLI); None means embed() runs bare.
        self._ckpt_store = None
        self._ckpt_every_rotations: int | None = None
        self._ckpt_keep = 2
        self._ckpt_auto_resume = True
        self._ckpt_stop_event = None

    # ------------------------------------------------------------------ #
    def configure_checkpointing(self, store, *, every_rotations: int | None = None,
                                keep: int = 2, auto_resume: bool = True,
                                stop_event=None) -> None:
        """Attach an :class:`~repro.store.EmbeddingStore` for crash safety.

        ``every_rotations`` adds rotation-cadence checkpoints on partitioned
        levels (``None``/0 = level boundaries only); ``keep`` bounds the
        checkpoint versions retained; ``auto_resume`` makes the next
        :meth:`embed` restart from the newest compatible checkpoint;
        ``stop_event`` requests a graceful stop at the next boundary.
        """
        self._ckpt_store = store
        self._ckpt_every_rotations = every_rotations
        self._ckpt_keep = keep
        self._ckpt_auto_resume = auto_resume
        self._ckpt_stop_event = stop_event

    def sweep_checkpoints(self, fingerprint: str) -> int:
        """Drop this tool's checkpoint lineage for ``fingerprint`` (run done)."""
        if self._ckpt_store is None:
            return 0
        removed = self._ckpt_store.gc(0, fingerprint=fingerprint,
                                      tool=self.name + CHECKPOINT_SUFFIX)
        return len(removed)

    def describe(self) -> str:
        cfg = self.config
        coarse = ("MultiEdgeCollapse" if cfg.use_coarsening else "no coarsening")
        backend = f", {cfg.kernel_backend} kernels"
        sampler = ("" if cfg.sampler_backend == DEFAULT_SAMPLER_BACKEND
                   else f", {cfg.sampler_backend} sampler")
        mode = ("" if normalize_execution_mode(cfg.execution_mode) == DEFAULT_EXECUTION_MODE
                else f", {cfg.execution_mode} execution")
        # Serving observability: when a hierarchy cache is attached (directly
        # or by the EmbeddingService), its behaviour shows up in `tools` /
        # query output instead of being invisible state.
        cache = ""
        if self.hierarchy_cache is not None:
            s = self.hierarchy_cache.stats()
            cache = (f"; hierarchy cache: {s['entries']} entries, "
                     f"{s['hits']} hits, {s['misses']} misses")
        return (f"GOSH {cfg.name}: p={cfg.smoothing_ratio}, lr={cfg.learning_rate}, "
                f"e={cfg.epochs}, {coarse}{backend}{sampler}{mode} (GPU, multilevel)"
                f"{cache}")

    def prepare(self, graph: CSRGraph) -> None:
        """Pre-build (and cache) the coarsening hierarchy for ``graph``.

        Calling ``prepare`` is the explicit opt-in to caching: it attaches a
        private :class:`HierarchyCache` when none is wired in yet.
        """
        if self.hierarchy_cache is None:
            self.hierarchy_cache = HierarchyCache()
        embedder = GoshEmbedder(self.config, device=self.device)
        self.hierarchy_cache.get_or_build(graph, self.config,
                                          lambda: embedder.coarsen(graph))

    def embed(self, graph: CSRGraph, *, device: SimulatedDevice | None = None,
              seed: int | None = None,
              progress: ProgressCallback | None = None) -> EmbeddingResult:
        cfg = self.config if seed is None else self.config.with_(seed=seed)
        embedder = GoshEmbedder(cfg, device=device or self.device)
        t0 = perf_counter()

        self._emit(progress, "coarsen", graph, threshold=cfg.coarsening_threshold)
        # Without an attached cache every run coarsens from scratch, keeping
        # the paper's timing semantics; caching is opt-in via prepare(), the
        # constructor, or the EmbeddingService.
        if self.hierarchy_cache is not None:
            hierarchy, coarsen_seconds, cache_hit = self.hierarchy_cache.get_or_build(
                graph, cfg, lambda: embedder.coarsen(graph))
        else:
            hierarchy, coarsen_seconds = embedder.coarsen(graph)
            cache_hit = False
        self._emit(progress, "train", graph, levels=hierarchy.num_levels,
                   hierarchy_cache_hit=cache_hit)
        checkpoint = resume = None
        if self._ckpt_store is not None:
            fp = graph.fingerprint()
            meta = cfg.metadata_echo()
            # Write checkpoints only when asked for a cadence or when a stop
            # event needs a boundary snapshot to land on; a store configured
            # purely for auto-resume (the service default) must not turn
            # every embed into extra store writes.
            if (self._ckpt_every_rotations is not None
                    or self._ckpt_stop_event is not None):
                checkpoint = CheckpointPolicy(
                    store=self._ckpt_store, fingerprint=fp, tool=self.name,
                    metadata=meta, graph_name=graph.name,
                    every_rotations=self._ckpt_every_rotations or None,
                    keep=self._ckpt_keep, stop_event=self._ckpt_stop_event)
            if self._ckpt_auto_resume:
                resume = latest_checkpoint(self._ckpt_store, fp, self.name,
                                           metadata=meta)
                if resume is not None:
                    self._emit(progress, "resume", graph,
                               level=resume.level, rotation=resume.rotation,
                               version=resume.entry.version)
        result = embedder.embed(graph, hierarchy=hierarchy,
                                checkpoint=checkpoint, resume=resume)
        # The embedder saw a pre-built hierarchy and reports coarsening as
        # free; patch the native result so `raw` tells the same story as the
        # envelope (build time on a miss, ~lookup time on a hit).
        result.coarsening_seconds = coarsen_seconds
        result.total_seconds += coarsen_seconds
        seconds = perf_counter() - t0
        self._emit(progress, "done", graph, seconds=round(seconds, 4))
        return EmbeddingResult.from_gosh(
            result, tool=self.name, graph=graph.name, seconds=seconds,
            hierarchy_cache_hit=cache_hit)


def make_gosh_fast(**options) -> GoshTool:
    return GoshTool("fast", **options)


def make_gosh_normal(**options) -> GoshTool:
    return GoshTool("normal", **options)


def make_gosh_slow(**options) -> GoshTool:
    return GoshTool("slow", **options)


def make_gosh_nocoarse(**options) -> GoshTool:
    return GoshTool("no-coarsening", **options)


# --------------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------------- #
class VerseTool(BaseEmbeddingTool):
    """VERSE — the CPU single-level baseline and Table 6/7 speed reference.

    Defaults follow the harness's twin-scale convention (adjacency
    similarity, lr matched to the other tools); pass
    ``similarity="ppr", learning_rate=0.0025`` for the paper's full-size
    settings.
    """

    name = "verse"
    display_name = "Verse"

    def __init__(self, *, dim: int | None = None, epoch_scale: float = 1.0,
                 device: SimulatedDevice | None = None, seed: int | None = None,
                 kernel_backend: str | None = None,
                 sampler_backend: str | None = None,
                 execution_mode: str | None = None,
                 epochs: int = 600, learning_rate: float = 0.045,
                 similarity: str = "adjacency", **config_overrides):
        _check_ignored_kernel_backend(kernel_backend)
        _check_ignored_sampler_backend(sampler_backend)
        _check_ignored_execution_mode(execution_mode)
        # CPU-only tool; accepted for registry uniformity.
        del device, kernel_backend, sampler_backend, execution_mode
        self.config = VerseConfig(
            dim=dim if dim is not None else VerseConfig.dim,
            epochs=max(1, int(epochs * epoch_scale)),
            learning_rate=learning_rate,
            similarity=similarity,
            seed=seed if seed is not None else VerseConfig.seed,
            **config_overrides,
        )

    def describe(self) -> str:
        cfg = self.config
        return (f"VERSE: single-level CPU baseline, {cfg.similarity} similarity, "
                f"lr={cfg.learning_rate}, e={cfg.epochs}")

    def embed(self, graph: CSRGraph, *, device: SimulatedDevice | None = None,
              seed: int | None = None,
              progress: ProgressCallback | None = None) -> EmbeddingResult:
        cfg = self.config if seed is None else replace(self.config, seed=seed)
        self._emit(progress, "train", graph, epochs=cfg.epochs)
        t0 = perf_counter()
        result = verse_embed(graph, cfg)
        seconds = perf_counter() - t0
        self._emit(progress, "done", graph, seconds=round(seconds, 4))
        return EmbeddingResult.from_verse(
            result, tool=self.name, graph=graph.name, seconds=seconds,
            metadata={"dim": cfg.dim, "similarity": cfg.similarity,
                      "learning_rate": cfg.learning_rate, "seed": cfg.seed})


class MileTool(BaseEmbeddingTool):
    """MILE — coarsen, embed only the coarsest graph, refine upward."""

    name = "mile"
    display_name = "Mile"

    def __init__(self, *, dim: int | None = None, epoch_scale: float = 1.0,
                 device: SimulatedDevice | None = None, seed: int | None = None,
                 kernel_backend: str | None = None,
                 sampler_backend: str | None = None,
                 execution_mode: str | None = None,
                 base_epochs: int = 200, **config_overrides):
        _check_ignored_kernel_backend(kernel_backend)
        _check_ignored_sampler_backend(sampler_backend)
        _check_ignored_execution_mode(execution_mode)
        # CPU-only tool; accepted for registry uniformity.
        del device, kernel_backend, sampler_backend, execution_mode
        self.config = MileConfig(
            dim=dim if dim is not None else MileConfig.dim,
            base_epochs=max(1, int(base_epochs * epoch_scale)),
            seed=seed if seed is not None else MileConfig.seed,
            **config_overrides,
        )

    def describe(self) -> str:
        cfg = self.config
        return (f"MILE: {cfg.coarsening_levels}-level coarsening, coarsest-only "
                f"training (e={cfg.base_epochs}), GCN-style refinement")

    def embed(self, graph: CSRGraph, *, device: SimulatedDevice | None = None,
              seed: int | None = None,
              progress: ProgressCallback | None = None) -> EmbeddingResult:
        cfg = self.config if seed is None else replace(self.config, seed=seed)
        self._emit(progress, "train", graph, levels=cfg.coarsening_levels)
        t0 = perf_counter()
        result = mile_embed(graph, cfg)
        seconds = perf_counter() - t0
        self._emit(progress, "done", graph, seconds=round(seconds, 4))
        return EmbeddingResult.from_mile(
            result, tool=self.name, graph=graph.name, seconds=seconds,
            metadata={"dim": cfg.dim, "base_epochs": cfg.base_epochs, "seed": cfg.seed})


class GraphViteTool(BaseEmbeddingTool):
    """GraphVite-like — episodic GPU training, fails when the matrix doesn't fit."""

    name = "graphvite"
    display_name = "Graphvite"

    def __init__(self, *, dim: int | None = None, epoch_scale: float = 1.0,
                 device: SimulatedDevice | None = None, seed: int | None = None,
                 kernel_backend: str | None = None,
                 sampler_backend: str | None = None,
                 execution_mode: str | None = None,
                 epochs: int = 600, learning_rate: float = 0.05, **config_overrides):
        _check_ignored_kernel_backend(kernel_backend)
        _check_ignored_sampler_backend(sampler_backend)
        _check_ignored_execution_mode(execution_mode)
        # episodic trainer has its own loop; accepted for registry uniformity.
        del kernel_backend, sampler_backend, execution_mode
        self.device = device
        self.config = GraphViteConfig(
            dim=dim if dim is not None else GraphViteConfig.dim,
            epochs=max(1, int(epochs * epoch_scale)),
            learning_rate=learning_rate,
            seed=seed if seed is not None else GraphViteConfig.seed,
            **config_overrides,
        )

    def describe(self) -> str:
        cfg = self.config
        return (f"GraphVite-like: episodic single-level GPU training, "
                f"deg^{cfg.negative_power} negatives, e={cfg.epochs}; "
                "raises DeviceMemoryError when the embedding does not fit")

    def embed(self, graph: CSRGraph, *, device: SimulatedDevice | None = None,
              seed: int | None = None,
              progress: ProgressCallback | None = None) -> EmbeddingResult:
        cfg = self.config if seed is None else replace(self.config, seed=seed)
        self._emit(progress, "train", graph, epochs=cfg.epochs)
        t0 = perf_counter()
        result = graphvite_embed(graph, cfg, device=device or self.device)
        seconds = perf_counter() - t0
        self._emit(progress, "done", graph, seconds=round(seconds, 4))
        return EmbeddingResult.from_graphvite(
            result, tool=self.name, graph=graph.name, seconds=seconds,
            metadata={"dim": cfg.dim, "epochs": cfg.epochs, "seed": cfg.seed})
