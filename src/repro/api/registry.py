"""Global tool registry: name -> :class:`~repro.api.protocol.EmbeddingTool`.

The registry is the one place the harness, CLI, service, and evaluation
pipeline resolve tools, so adding a backend is a single ``register_tool``
call (or a lazy ``register_lazy`` spec) instead of edits in four modules.

Two registration styles are supported:

* **eager** — ``register_tool("verse", VerseTool)`` stores a factory that is
  called with keyword options (``dim``, ``epoch_scale``, ``device``,
  ``seed``, …) and returns a tool instance.
* **lazy, entry-point style** — ``register_lazy("verse",
  "repro.api.tools:VerseTool")`` stores only the ``module:attr`` string; the
  module is imported on first lookup.  This is how the built-in tools are
  wired (see :data:`_BUILTIN_SPECS`), mirroring how installed plugins would
  advertise tools through packaging entry points.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable

from .protocol import EmbeddingTool

__all__ = [
    "UnknownToolError",
    "register_tool",
    "register_lazy",
    "unregister_tool",
    "get_tool",
    "available_tools",
    "tool_descriptions",
]

#: A factory receives keyword options and returns a configured tool.
ToolFactory = Callable[..., EmbeddingTool]

_FACTORIES: dict[str, ToolFactory] = {}
_LAZY: dict[str, str] = {}
_ALIASES: dict[str, str] = {}

#: Built-in tools, registered through the same entry-point-style specs that
#: third-party backends use, which keeps this table self-contained (no import
#: of :mod:`repro.api.tools` here).  The deferred import mostly benefits
#: external plugins — ``repro/__init__`` imports every built-in backend
#: anyway.  Order matters: it is the presentation order of the Table 6 suite.
_BUILTIN_SPECS: dict[str, str] = {
    "verse": "repro.api.tools:VerseTool",
    "mile": "repro.api.tools:MileTool",
    "graphvite": "repro.api.tools:GraphViteTool",
    "gosh-fast": "repro.api.tools:make_gosh_fast",
    "gosh-normal": "repro.api.tools:make_gosh_normal",
    "gosh-slow": "repro.api.tools:make_gosh_slow",
    "gosh-nocoarse": "repro.api.tools:make_gosh_nocoarse",
}
_BUILTIN_ALIASES: dict[str, str] = {
    "gosh": "gosh-normal",
    "gosh-no-coarsening": "gosh-nocoarse",
}


class UnknownToolError(KeyError):
    """Raised when a tool name is not (and cannot lazily be) registered."""

    def __init__(self, name: str, options: list[str]):
        super().__init__(f"unknown tool {name!r}; registered tools: {', '.join(options)}")
        self.name = name
        self.options = options

    def __str__(self) -> str:
        # KeyError.__str__ wraps the message in repr quotes; undo that so the
        # CLI can print the message verbatim.
        return self.args[0]


def _canonical(name: str) -> str:
    return name.strip().lower()


def _ensure_builtins() -> None:
    for name, spec in _BUILTIN_SPECS.items():
        if name not in _FACTORIES and name not in _LAZY:
            _LAZY[name] = spec
    for alias, target in _BUILTIN_ALIASES.items():
        _ALIASES.setdefault(alias, target)


def register_tool(name: str, factory: ToolFactory | None = None, *,
                  aliases: tuple[str, ...] = (), replace: bool = False):
    """Register ``factory`` under ``name`` (usable as a decorator).

    ``factory`` is any callable returning an :class:`EmbeddingTool` when
    called with keyword options — typically the tool class itself.
    """
    key = _canonical(name)

    def _register(f: ToolFactory) -> ToolFactory:
        if not replace and (key in _FACTORIES or key in _LAZY or key in _BUILTIN_SPECS):
            raise ValueError(f"tool {key!r} is already registered (pass replace=True to override)")
        _LAZY.pop(key, None)
        _FACTORIES[key] = f
        for alias in aliases:
            _ALIASES[_canonical(alias)] = key
        return f

    return _register if factory is None else _register(factory)


def register_lazy(name: str, target: str, *, aliases: tuple[str, ...] = (),
                  replace: bool = False) -> None:
    """Register an entry-point-style ``"module:attr"`` spec under ``name``.

    The module is imported only when the tool is first resolved.
    """
    if ":" not in target:
        raise ValueError(f"lazy target must look like 'module:attr', got {target!r}")
    key = _canonical(name)
    if not replace and (key in _FACTORIES or key in _LAZY or key in _BUILTIN_SPECS):
        raise ValueError(f"tool {key!r} is already registered (pass replace=True to override)")
    _FACTORIES.pop(key, None)
    _LAZY[key] = target
    for alias in aliases:
        _ALIASES[_canonical(alias)] = key


def unregister_tool(name: str) -> None:
    """Remove a registration (used by tests; built-ins re-register lazily)."""
    key = _canonical(name)
    _FACTORIES.pop(key, None)
    _LAZY.pop(key, None)
    for alias in [a for a, t in _ALIASES.items() if t == key]:
        del _ALIASES[alias]


def _resolve_factory(key: str) -> ToolFactory:
    if key in _FACTORIES:
        return _FACTORIES[key]
    # Keep the lazy spec in place until the import succeeds, so a transient
    # import failure surfaces again (with its real error) on the next lookup
    # instead of degrading into UnknownToolError.
    spec = _LAZY[key]
    module_name, attr = spec.split(":", 1)
    factory = getattr(import_module(module_name), attr)
    _FACTORIES[key] = factory
    _LAZY.pop(key, None)
    return factory


def get_tool(name: str, **options) -> EmbeddingTool:
    """Instantiate the tool registered under ``name`` (case-insensitive).

    Keyword ``options`` are forwarded to the factory; the built-in tools all
    accept ``dim``, ``epoch_scale``, ``device``, ``seed``, ``kernel_backend``,
    and ``sampler_backend``.
    """
    _ensure_builtins()
    key = _canonical(name)
    # Explicit registrations win over aliases: a tool registered under a name
    # that happens to be a builtin alias (e.g. "gosh") must not be shadowed.
    if key not in _FACTORIES and key not in _LAZY:
        key = _ALIASES.get(key, key)
    if key not in _FACTORIES and key not in _LAZY:
        raise UnknownToolError(name, available_tools())
    return _resolve_factory(key)(**options)


def available_tools() -> list[str]:
    """Registered tool names, in registration (presentation) order."""
    _ensure_builtins()
    seen = dict.fromkeys(list(_FACTORIES) + list(_LAZY))
    # Preserve the built-in ordering first, then third-party registrations.
    ordered = [n for n in _BUILTIN_SPECS if n in seen]
    ordered += [n for n in seen if n not in _BUILTIN_SPECS]
    return ordered


def tool_descriptions(**options) -> list[dict[str, object]]:
    """One row per registered tool: name, display name, description.

    A registration that fails to instantiate (broken lazy spec, incompatible
    factory signature) still gets a row describing the failure — the listing
    is the diagnostic surface, so it must not die on one bad plugin.
    """
    rows = []
    for name in available_tools():
        try:
            tool = get_tool(name, **options)
            rows.append({
                "name": name,
                "display": tool.display_name,
                "description": tool.describe(),
            })
        except Exception as exc:  # report, don't crash the listing
            rows.append({
                "name": name,
                "display": "-",
                "description": f"unavailable: {exc.__class__.__name__}: {exc}",
            })
    return rows
