"""Coarsening-hierarchy cache shared by GOSH tools and the service layer.

Stage 1 of Algorithm 2 (MultiEdgeCollapse) depends only on the graph and the
coarsening knobs — not on the training configuration — so repeated GOSH runs
on the same graph (e.g. the fast/normal/slow sweep of Table 6, or repeated
serving requests) can reuse one hierarchy.  The cache keys on the graph's
content :meth:`~repro.graph.csr.CSRGraph.fingerprint` plus every config field
that influences coarsening, and evicts least-recently-used entries beyond
``max_entries`` (hierarchies hold every level's CSR arrays, so the cache is
deliberately small).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from ..coarsening.hierarchy import CoarseningHierarchy
from ..embedding.config import GoshConfig
from ..graph.csr import CSRGraph

__all__ = ["HierarchyCache", "hierarchy_cache_key"]

#: (graph fingerprint, threshold, max levels, use_coarsening, parallel)
CacheKey = tuple[str, int, int, bool, bool]


def hierarchy_cache_key(graph: CSRGraph, config: GoshConfig) -> CacheKey:
    """The coarsening-relevant identity of a (graph, config) pair."""
    return (
        graph.fingerprint(),
        config.coarsening_threshold,
        config.max_coarsening_levels,
        config.use_coarsening,
        config.use_parallel_coarsening,
    )


@dataclass
class HierarchyCache:
    """LRU cache of coarsening hierarchies keyed by (graph, coarsening knobs)."""

    max_entries: int = 8
    hits: int = 0
    misses: int = 0
    _entries: "OrderedDict[CacheKey, CoarseningHierarchy]" = field(default_factory=OrderedDict)

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_build(
        self,
        graph: CSRGraph,
        config: GoshConfig,
        builder: Callable[[], tuple[CoarseningHierarchy, float]],
    ) -> tuple[CoarseningHierarchy, float, bool]:
        """Return ``(hierarchy, build_seconds, cache_hit)``.

        On a miss, ``builder`` (typically ``GoshEmbedder.coarsen``) runs and
        its result is stored; on a hit the stored hierarchy is returned with
        the (near-zero) lookup time.
        """
        key = hierarchy_cache_key(graph, config)
        t0 = perf_counter()
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached, perf_counter() - t0, True
        self.misses += 1
        hierarchy, build_seconds = builder()
        self._entries[key] = hierarchy
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return hierarchy, build_seconds, False

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}
