"""`QueryEngine` — k-NN similarity serving over one embedding matrix.

The engine owns a :class:`~repro.query.backends.PreparedMatrix` (float32
view + lazily cached norms) and answers many small top-k requests cheaply:

* :meth:`query` — score arbitrary query vectors (one or a stacked batch).
* :meth:`nearest` — neighbours of stored vertices by id, optionally
  excluding the vertex itself (the common "similar items" request).
* :meth:`stats` — serving counters (queries, rows scored, seconds).

Backends come from the :mod:`repro.query.backends` registry (``"blocked"``
default, ``"exact"`` oracle); the matrix typically comes straight out of an
:class:`~repro.store.EmbeddingStore` entry loaded with ``mmap=True``, in
which case blocks are paged off disk on first touch and the engine holds no
second copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..obs import trace
from .backends import (
    METRICS,
    PreparedMatrix,
    QueryBackend,
    get_query_backend,
    resolve_vertex_range,
)

__all__ = ["QueryEngine", "QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """Top-k answer for a batch of queries.

    ``ids``/``scores`` are ``(Q, k)``, ranked per row by descending score
    with ascending-id tie-break.
    """

    ids: np.ndarray
    scores: np.ndarray
    metric: str
    backend: str
    seconds: float

    @property
    def num_queries(self) -> int:
        return int(self.ids.shape[0])

    @property
    def k(self) -> int:
        return int(self.ids.shape[1])

    def as_rows(self, query_labels: "list[object] | None" = None) -> list[dict[str, object]]:
        """Flat rows for table printing: one row per (query, rank)."""
        rows = []
        for j in range(self.num_queries):
            label = query_labels[j] if query_labels is not None else j
            for rank in range(self.k):
                rows.append({
                    "query": label,
                    "rank": rank + 1,
                    "neighbor": int(self.ids[j, rank]),
                    self.metric: round(float(self.scores[j, rank]), 6),
                })
        return rows


class QueryEngine:
    """Top-k similarity queries over one embedding matrix."""

    def __init__(self, embedding: np.ndarray, *, metric: str = "cosine",
                 backend: "str | QueryBackend | None" = None,
                 block_rows: int = 4096):
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; options: {', '.join(METRICS)}")
        if block_rows < 1:
            raise ValueError("block_rows must be >= 1")
        self.prepared = PreparedMatrix(embedding, metric=metric)
        self.backend = get_query_backend(backend)
        self.block_rows = block_rows
        self.queries_served = 0
        self.batches_served = 0
        self.rows_scored = 0
        self.query_seconds = 0.0

    @property
    def metric(self) -> str:
        return self.prepared.metric

    @property
    def num_vertices(self) -> int:
        return self.prepared.num_rows

    @property
    def dim(self) -> int:
        return self.prepared.dim

    def describe(self) -> str:
        return (f"QueryEngine: {self.num_vertices}x{self.dim} matrix, "
                f"{self.metric} metric, {self.backend.name} backend "
                f"(block_rows={self.block_rows})")

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def query(self, vectors: np.ndarray, k: int = 10, *,
              backend: "str | QueryBackend | None" = None,
              vertex_range: "tuple[int, int] | None" = None) -> QueryResult:
        """Top-k rows for each query vector (``(d,)`` or ``(Q, d)``).

        ``vertex_range`` restricts the candidate rows to ``[lo, hi)`` — the
        sharded serving tier's routing primitive.  The surviving rows'
        score bits are identical to an unranged run (backends score the
        same canonical blocks and only mask selection).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        resolved = self.backend if backend is None else get_query_backend(backend)
        lo, hi = resolve_vertex_range(vertex_range, self.num_vertices)
        q = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        t0 = perf_counter()
        ids, scores = resolved.topk(self.prepared, q, k, block_rows=self.block_rows,
                                    vertex_range=vertex_range)
        seconds = perf_counter() - t0
        self.queries_served += q.shape[0]
        self.batches_served += 1
        self.rows_scored += (hi - lo) * q.shape[0]
        self.query_seconds += seconds
        if trace.enabled:
            trace.add_complete("engine.query", seconds,
                               queries=int(q.shape[0]), k=int(k),
                               rows=int(hi - lo), backend=resolved.name)
        return QueryResult(ids=ids, scores=scores, metric=self.metric,
                           backend=resolved.name, seconds=seconds)

    def nearest(self, vertices: "int | np.ndarray", k: int = 10, *,
                exclude_self: bool = True,
                backend: "str | QueryBackend | None" = None,
                vertex_range: "tuple[int, int] | None" = None) -> QueryResult:
        """Top-k neighbours of stored vertices, queried by id.

        With ``exclude_self`` (default) each vertex is removed from its own
        answer — the engine asks for ``k + 1`` and drops the vertex's row,
        so the caller still receives ``k`` neighbours.  Vertex ids are
        always global (not relative to ``vertex_range``); with a range,
        ``exclude_self`` reserves one slot regardless of whether the query
        vertex falls inside the range, keeping the output rectangular.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        idx = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_vertices):
            raise ValueError(
                f"vertex ids must lie in [0, {self.num_vertices}), "
                f"got range [{idx.min()}, {idx.max()}]")
        if not exclude_self:
            return self.query(self.prepared.matrix[idx], k, backend=backend,
                              vertex_range=vertex_range)
        lo, hi = resolve_vertex_range(vertex_range, self.num_vertices)
        size = hi - lo
        want = min(k, max(size - 1, 0))
        result = self.query(self.prepared.matrix[idx], min(want + 1, size),
                            backend=backend, vertex_range=vertex_range)
        out_ids = np.empty((idx.shape[0], want), dtype=np.int64)
        out_scores = np.empty((idx.shape[0], want), dtype=np.float32)
        for j, v in enumerate(idx):
            keep = np.flatnonzero(result.ids[j] != v)[:want]
            out_ids[j] = result.ids[j, keep]
            out_scores[j] = result.scores[j, keep]
        return QueryResult(ids=out_ids, scores=out_scores, metric=result.metric,
                           backend=result.backend, seconds=result.seconds)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, object]:
        return {
            "metric": self.metric,
            "backend": self.backend.name,
            "shape": [self.num_vertices, self.dim],
            "block_rows": self.block_rows,
            "queries_served": self.queries_served,
            "batches_served": self.batches_served,
            "rows_scored": self.rows_scored,
            "query_seconds": round(self.query_seconds, 4),
        }
