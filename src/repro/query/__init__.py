"""repro.query — high-throughput k-NN similarity serving over embeddings.

The consumption-side counterpart of the training pipeline: load an embedding
(typically memory-mapped out of the :mod:`repro.store`), prepare it once, and
answer many small top-k requests cheaply.

* :class:`QueryEngine` — the serving object (:meth:`~QueryEngine.query`,
  :meth:`~QueryEngine.nearest`, counters).
* :mod:`repro.query.backends` — the pluggable top-k layer mirroring
  :mod:`repro.gpu.backends`: ``"blocked"`` (chunked float32 matmul, default)
  and ``"exact"`` (brute-force oracle), bit-identical to each other.

Quickstart::

    from repro.query import QueryEngine

    engine = QueryEngine(result.embedding, metric="cosine")
    answer = engine.nearest([0, 7], k=5)
    print(answer.ids, answer.scores)
"""

from .backends import (
    DEFAULT_QUERY_BACKEND,
    METRICS,
    BlockedQueryBackend,
    ExactQueryBackend,
    PreparedMatrix,
    QueryBackend,
    UnknownQueryBackendError,
    available_query_backends,
    get_query_backend,
    register_query_backend,
    resolve_vertex_range,
    topk_by_score,
)
from .engine import QueryEngine, QueryResult

__all__ = [
    "DEFAULT_QUERY_BACKEND",
    "METRICS",
    "BlockedQueryBackend",
    "ExactQueryBackend",
    "PreparedMatrix",
    "QueryBackend",
    "UnknownQueryBackendError",
    "available_query_backends",
    "get_query_backend",
    "register_query_backend",
    "resolve_vertex_range",
    "topk_by_score",
    "QueryEngine",
    "QueryResult",
]
