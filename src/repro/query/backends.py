"""Query backend layer: swappable top-k implementations over one scorer.

Mirrors the kernel/sampler backend registries
(:mod:`repro.gpu.backends` / :mod:`repro.graph.sampler_backends`): a small
protocol, two built-ins, and name-based registration for third parties.

* ``"exact"`` — the brute-force oracle: score every row against every query
  in one pass and fully sort each query's score column.  Clarity over speed.
* ``"blocked"`` — the production path (default): stream the matrix in row
  blocks, keep only each block's top-k candidates (plus score ties at the
  boundary), and merge at the end.  It never materialises the full
  ``|V| x Q`` score matrix and replaces the oracle's per-query full sorts
  with O(|V|) partial selection, so throughput scales with matmul instead of
  sorting (floor ≥5x in ``benchmarks/test_query_perf.py``).

**Parity is exact.**  Both backends score through the same primitive
(:meth:`PreparedMatrix.score_block`) over the *same* ``block_rows`` grid —
identical float32 matmuls on identical row ranges, so the score bits cannot
drift even on BLAS builds whose accumulation order varies with the matrix
shape.  What differs is only the selection: the oracle sorts every score,
the blocked backend keeps per-block top-k candidates — including *every*
candidate tied with a block's k-th best score, so boundary ties cannot evict
the id the oracle would keep — and both break ties identically (smaller id
wins, via :func:`topk_by_score`).  The golden suite in ``tests/query/``
pins ids *and* score bits across block sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "METRICS",
    "DEFAULT_QUERY_BACKEND",
    "PreparedMatrix",
    "QueryBackend",
    "ExactQueryBackend",
    "BlockedQueryBackend",
    "UnknownQueryBackendError",
    "register_query_backend",
    "get_query_backend",
    "available_query_backends",
    "topk_by_score",
    "resolve_vertex_range",
]

#: Supported scoring metrics.  ``dot`` is the raw inner product; ``cosine``
#: normalises by the precomputed row/query norms; ``sigmoid`` is the
#: trainer's edge-probability model sigma(u . v) — the same link score the
#: update kernels optimise — and, being monotone in ``dot``, ranks
#: identically while returning calibrated (0, 1) scores.
METRICS = ("dot", "cosine", "sigmoid")

DEFAULT_QUERY_BACKEND = "blocked"


@dataclass
class PreparedMatrix:
    """The embedding matrix prepared once for any number of queries.

    ``matrix`` is float32 and C-contiguous (a no-op view when the source —
    e.g. a memory-mapped store shard — already is).  ``inv_norms`` is
    precomputed lazily for the cosine metric and shared by every backend, so
    normalisation cannot introduce cross-backend drift.
    """

    matrix: np.ndarray
    metric: str = "cosine"
    _inv_norms: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(f"unknown metric {self.metric!r}; options: {', '.join(METRICS)}")
        if self.matrix.ndim != 2:
            raise ValueError(f"embedding must be a 2-D matrix, got shape {self.matrix.shape}")
        self.matrix = np.ascontiguousarray(self.matrix, dtype=np.float32)

    @property
    def num_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def dim(self) -> int:
        return int(self.matrix.shape[1])

    @property
    def inv_norms(self) -> np.ndarray:
        if self._inv_norms is None:
            norms = np.sqrt(np.einsum("ij,ij->i", self.matrix, self.matrix,
                                      dtype=np.float32))
            # Zero rows score 0 against everything instead of NaN.
            safe = np.where(norms > 0.0, norms, np.float32(1.0))
            self._inv_norms = (np.float32(1.0) / safe).astype(np.float32)
        return self._inv_norms

    def prepare_queries(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Coerce queries to float32 ``(Q, d)`` and precompute their norms."""
        q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if q.shape[1] != self.dim:
            raise ValueError(f"queries must have dimension {self.dim}, got {q.shape[1]}")
        if self.metric != "cosine":
            return q, None
        qnorms = np.sqrt(np.einsum("ij,ij->i", q, q, dtype=np.float32))
        safe = np.where(qnorms > 0.0, qnorms, np.float32(1.0))
        return q, (np.float32(1.0) / safe).astype(np.float32)

    def blocks(self, block_rows: int) -> Iterator[tuple[int, int]]:
        """The canonical block grid: every backend scores these exact ranges.

        Sharing the grid (not just the primitive) is what makes cross-backend
        score bits reproducible: optimized BLAS may change its accumulation
        order with the matrix shape, so the oracle must issue the *same*
        matmuls as the production backend, not one big one.
        """
        if block_rows < 1:
            raise ValueError("block_rows must be >= 1")
        for start in range(0, self.num_rows, block_rows):
            yield start, min(self.num_rows, start + block_rows)

    def score_block(self, start: int, stop: int, queries: np.ndarray,
                    inv_qnorms: np.ndarray | None) -> np.ndarray:
        """Score rows ``[start, stop)`` against every query: ``(rows, Q)``.

        This is the single scoring primitive both backends call, on the
        ranges produced by :meth:`blocks`.
        """
        scores = self.matrix[start:stop] @ queries.T
        if self.metric == "cosine":
            scores *= self.inv_norms[start:stop, None]
            scores *= inv_qnorms[None, :]
        elif self.metric == "sigmoid":
            np.negative(scores, out=scores)
            np.exp(scores, out=scores)
            scores += np.float32(1.0)
            np.reciprocal(scores, out=scores)
        return scores


def topk_by_score(ids: np.ndarray, scores: np.ndarray, k: int,
                  ) -> tuple[np.ndarray, np.ndarray]:
    """The shared ranking rule: descending score, ascending id on ties."""
    order = np.lexsort((ids, -scores.astype(np.float64)))[:k]
    return ids[order], scores[order]


def resolve_vertex_range(vertex_range: "tuple[int, int] | None",
                         num_rows: int) -> tuple[int, int]:
    """Validate a candidate row range ``[lo, hi)`` (``None`` = every row).

    The range restricts which rows may *appear in the answer* — it is the
    primitive the sharded serving tier routes on (each shard owns one range
    of the shared matrix).  Scoring still walks the canonical block grid of
    the full matrix (see the backends), so a ranged answer's score bits are
    identical to the same rows' bits in an unranged run.
    """
    if vertex_range is None:
        return 0, num_rows
    lo, hi = int(vertex_range[0]), int(vertex_range[1])
    if not (0 <= lo < hi <= num_rows):
        raise ValueError(
            f"vertex_range [{lo}, {hi}) must satisfy 0 <= lo < hi <= {num_rows}")
    return lo, hi


@runtime_checkable
class QueryBackend(Protocol):
    """Uniform interface over every top-k implementation."""

    name: str

    def describe(self) -> str:
        """One-line human-readable description."""
        ...

    def topk(self, prepared: PreparedMatrix, queries: np.ndarray, k: int, *,
             block_rows: int = 4096,
             vertex_range: "tuple[int, int] | None" = None,
             ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, scores)``, each ``(Q, k)``, ranked per query.

        ``vertex_range`` restricts the candidate rows to ``[lo, hi)`` (the
        sharded serving tier's routing primitive) without perturbing score
        bits: implementations must score the same canonical blocks as the
        unranged run and only mask the selection.
        """
        ...


class ExactQueryBackend:
    """Brute force oracle: materialise every score, fully sort every query.

    Scoring walks the same block grid as the blocked backend (see
    :meth:`PreparedMatrix.blocks`) so the two backends' score bits are
    identical by construction; everything after — keep all ``|V| x Q``
    scores, full per-query sort — is deliberately naive.
    """

    name = "exact"

    def describe(self) -> str:
        return ("exact: full |V|xQ score matrix, full per-query sort "
                "(brute-force oracle)")

    def topk(self, prepared: PreparedMatrix, queries: np.ndarray, k: int, *,
             block_rows: int = 4096,
             vertex_range: "tuple[int, int] | None" = None,
             ) -> tuple[np.ndarray, np.ndarray]:
        q, inv_qnorms = prepared.prepare_queries(queries)
        n = prepared.num_rows
        lo, hi = resolve_vertex_range(vertex_range, n)
        k = min(k, hi - lo)
        if n == 0 or k == 0:
            return (np.empty((q.shape[0], 0), dtype=np.int64),
                    np.empty((q.shape[0], 0), dtype=np.float32))
        # Score whole canonical blocks even at the range edges — masking
        # happens after scoring, so a ranged run's bits match the full run.
        parts_ids: list[np.ndarray] = []
        parts_scores: list[np.ndarray] = []
        for start, stop in prepared.blocks(block_rows):
            if stop <= lo or start >= hi:
                continue
            block = prepared.score_block(start, stop, q, inv_qnorms)
            a, b = max(start, lo) - start, min(stop, hi) - start
            parts_ids.append(np.arange(start + a, start + b, dtype=np.int64))
            parts_scores.append(block[a:b])
        all_ids = np.concatenate(parts_ids)
        scores = np.concatenate(parts_scores, axis=0)
        out_ids = np.empty((q.shape[0], k), dtype=np.int64)
        out_scores = np.empty((q.shape[0], k), dtype=np.float32)
        for j in range(q.shape[0]):
            out_ids[j], out_scores[j] = topk_by_score(all_ids, scores[:, j], k)
        return out_ids, out_scores


class BlockedQueryBackend:
    """Chunked float32 matmul with per-block candidate selection (default)."""

    name = "blocked"

    def describe(self) -> str:
        return ("blocked: chunked float32 matmul, per-block top-k candidates "
                "(ties kept), merged per query (default)")

    def topk(self, prepared: PreparedMatrix, queries: np.ndarray, k: int, *,
             block_rows: int = 4096,
             vertex_range: "tuple[int, int] | None" = None,
             ) -> tuple[np.ndarray, np.ndarray]:
        q, inv_qnorms = prepared.prepare_queries(queries)
        n, num_q = prepared.num_rows, q.shape[0]
        lo, hi = resolve_vertex_range(vertex_range, n)
        k = min(k, hi - lo)
        if n == 0 or k == 0:
            return (np.empty((num_q, 0), dtype=np.int64),
                    np.empty((num_q, 0), dtype=np.float32))
        cand_ids: list[np.ndarray] = []
        cand_cols: list[np.ndarray] = []
        cand_scores: list[np.ndarray] = []
        for start, stop in prepared.blocks(block_rows):
            if stop <= lo or start >= hi:
                continue
            scores = prepared.score_block(start, stop, q, inv_qnorms)
            # Mask out-of-range rows only after the full-block matmul, so
            # the surviving rows' score bits equal the unranged run's.
            a, b = max(start, lo) - start, min(stop, hi) - start
            if a or b < stop - start:
                scores = scores[a:b]
            base = start + a
            rows = b - a
            if rows > k:
                # k-th best score per query; keep everything scoring >= it
                # so boundary ties survive to the merge (where the shared
                # smaller-id-wins rule resolves them exactly like the
                # oracle).  NaN scores rank *last* in the final sort, but
                # np.partition orders them like +inf — so sanitise them to
                # -inf for the threshold: they then stop stealing top-k
                # slots from finite scores, and survive as candidates only
                # when a block has fewer than k finite rows (threshold
                # -inf), which is exactly when the oracle's answer could
                # need its NaN tail.
                ranked = np.where(np.isnan(scores), -np.inf, scores)
                part = np.partition(ranked, rows - k, axis=0)
                thresholds = part[rows - k]
                keep_rows, keep_cols = np.nonzero(ranked >= thresholds[None, :])
            else:
                keep_rows, keep_cols = np.nonzero(np.ones_like(scores, dtype=bool))
            cand_ids.append((base + keep_rows).astype(np.int64))
            cand_cols.append(keep_cols)
            cand_scores.append(scores[keep_rows, keep_cols])
        ids = np.concatenate(cand_ids)
        cols = np.concatenate(cand_cols)
        merged = np.concatenate(cand_scores)
        out_ids = np.empty((num_q, k), dtype=np.int64)
        out_scores = np.empty((num_q, k), dtype=np.float32)
        order = np.argsort(cols, kind="stable")
        bounds = np.searchsorted(cols[order], np.arange(num_q + 1))
        for j in range(num_q):
            sel = order[bounds[j]:bounds[j + 1]]
            out_ids[j], out_scores[j] = topk_by_score(ids[sel], merged[sel], k)
        return out_ids, out_scores


# --------------------------------------------------------------------------- #
# Registry (mirrors repro.gpu.backends / repro.graph.sampler_backends)
# --------------------------------------------------------------------------- #
#: name -> zero-argument factory; instances are created lazily and cached.
_FACTORIES: dict[str, Callable[[], QueryBackend]] = {
    "exact": ExactQueryBackend,
    "blocked": BlockedQueryBackend,
}
_INSTANCES: dict[str, QueryBackend] = {}


class UnknownQueryBackendError(KeyError):
    """Raised when a query-backend name is not registered."""

    def __init__(self, name: str, options: list[str]):
        super().__init__(
            f"unknown query backend {name!r}; registered backends: {', '.join(options)}")
        self.name = name
        self.options = options

    def __str__(self) -> str:
        return self.args[0]


def register_query_backend(name: str, factory: Callable[[], QueryBackend], *,
                           replace: bool = False) -> None:
    """Register a zero-argument ``factory`` under ``name`` (case-insensitive)."""
    key = name.strip().lower()
    if not replace and key in _FACTORIES:
        raise ValueError(f"backend {key!r} is already registered (pass replace=True to override)")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def get_query_backend(backend: "str | QueryBackend | None") -> QueryBackend:
    """Resolve ``backend`` to an instance (name, instance, or None=default)."""
    if backend is None:
        backend = DEFAULT_QUERY_BACKEND
    if not isinstance(backend, str):
        return backend
    key = backend.strip().lower()
    if key not in _FACTORIES:
        raise UnknownQueryBackendError(backend, available_query_backends())
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


def available_query_backends() -> list[str]:
    """Registered backend names, built-ins first."""
    return list(_FACTORIES)
