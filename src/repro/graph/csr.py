"""Compressed Sparse Row (CSR) graph data structure.

This module implements the graph substrate used throughout the GOSH
reproduction.  The paper (Section 3.2.1) stores all graphs in CSR form:

* ``xadj`` — an array of length ``|V| + 1``; the neighbours of vertex ``i``
  live in ``adj[xadj[i]:xadj[i + 1]]``.
* ``adj``  — the concatenated adjacency lists.

All heavy operations (degree computation, symmetrisation, subgraph
extraction, relabelling) are vectorised NumPy so that graphs with millions of
edges remain practical in pure Python.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph", "coo_to_csr", "validate_csr"]


def coo_to_csr(
    n_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    sort_neighbors: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Convert a COO edge list into CSR ``(xadj, adj)`` arrays.

    Parameters
    ----------
    n_vertices:
        Number of vertices; all entries of ``src``/``dst`` must lie in
        ``[0, n_vertices)``.
    src, dst:
        Endpoint arrays of equal length.
    sort_neighbors:
        When True the adjacency list of every vertex is sorted, which gives
        deterministic iteration order and enables binary-search membership
        tests.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError(f"src and dst must have equal length, got {src.shape} vs {dst.shape}")
    if src.size:
        lo = min(src.min(), dst.min())
        hi = max(src.max(), dst.max())
        if lo < 0 or hi >= n_vertices:
            raise ValueError(
                f"edge endpoints must lie in [0, {n_vertices}), got range [{lo}, {hi}]"
            )
    counts = np.bincount(src, minlength=n_vertices)
    xadj = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=xadj[1:])
    order = np.argsort(src, kind="stable")
    adj = dst[order]
    if sort_neighbors and adj.size:
        # Sort within each row: stable sort by dst after grouping by src.
        row_of = src[order]
        composite = np.lexsort((adj, row_of))
        adj = adj[composite]
    return xadj, adj


def validate_csr(xadj: np.ndarray, adj: np.ndarray, n_vertices: int) -> None:
    """Raise ``ValueError`` if ``(xadj, adj)`` is not a well-formed CSR pair."""
    if xadj.ndim != 1 or adj.ndim != 1:
        raise ValueError("xadj and adj must be one-dimensional")
    if xadj.shape[0] != n_vertices + 1:
        raise ValueError(f"xadj must have length |V|+1 = {n_vertices + 1}, got {xadj.shape[0]}")
    if xadj[0] != 0:
        raise ValueError("xadj[0] must be 0")
    if xadj[-1] != adj.shape[0]:
        raise ValueError(f"xadj[-1] ({xadj[-1]}) must equal len(adj) ({adj.shape[0]})")
    if np.any(np.diff(xadj) < 0):
        raise ValueError("xadj must be non-decreasing")
    if adj.size and (adj.min() < 0 or adj.max() >= n_vertices):
        raise ValueError("adj entries must lie in [0, |V|)")


@dataclass
class CSRGraph:
    """A directed graph in CSR form.

    Undirected graphs are stored symmetrically (both ``(u, v)`` and
    ``(v, u)`` present); :meth:`from_edges` with ``undirected=True`` takes
    care of that.  ``num_edges`` therefore counts *directed* arcs; for an
    undirected graph it is twice the number of undirected edges.
    """

    xadj: np.ndarray
    adj: np.ndarray
    num_vertices: int
    undirected: bool = True
    name: str = "graph"
    # Cached degree array (out-degrees); built lazily.
    _degrees: np.ndarray | None = field(default=None, repr=False, compare=False)
    # Cached content hash; built lazily by fingerprint().
    _fingerprint: str | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        n_vertices: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        *,
        undirected: bool = True,
        dedup: bool = True,
        drop_self_loops: bool = True,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a graph from an edge list.

        Parameters
        ----------
        edges:
            Either an ``(m, 2)`` integer array or an iterable of pairs.
        undirected:
            Symmetrise the edge list (store both directions of every edge).
        dedup:
            Remove duplicate arcs.
        drop_self_loops:
            Remove ``(v, v)`` arcs, which carry no information for embedding.
        """
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"edges must be an (m, 2) array, got shape {arr.shape}")
        src, dst = arr[:, 0], arr[:, 1]
        if drop_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if undirected and src.size:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if dedup and src.size:
            key = src * np.int64(n_vertices) + dst
            _, unique_idx = np.unique(key, return_index=True)
            src, dst = src[unique_idx], dst[unique_idx]
        xadj, adj = coo_to_csr(n_vertices, src, dst)
        return cls(xadj=xadj, adj=adj, num_vertices=n_vertices, undirected=undirected, name=name)

    @classmethod
    def from_csr_arrays(
        cls,
        xadj: np.ndarray,
        adj: np.ndarray,
        *,
        undirected: bool = True,
        name: str = "graph",
        validate: bool = True,
    ) -> "CSRGraph":
        """Wrap existing CSR arrays (no copy)."""
        xadj = np.asarray(xadj, dtype=np.int64)
        adj = np.asarray(adj, dtype=np.int64)
        n = xadj.shape[0] - 1
        if validate:
            validate_csr(xadj, adj, n)
        return cls(xadj=xadj, adj=adj, num_vertices=n, undirected=undirected, name=name)

    @classmethod
    def empty(cls, n_vertices: int, *, name: str = "empty") -> "CSRGraph":
        """A graph with ``n_vertices`` vertices and no edges."""
        return cls(
            xadj=np.zeros(n_vertices + 1, dtype=np.int64),
            adj=np.zeros(0, dtype=np.int64),
            num_vertices=n_vertices,
            name=name,
        )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of directed arcs stored (2x undirected edge count)."""
        return int(self.adj.shape[0])

    @property
    def num_undirected_edges(self) -> int:
        """Number of undirected edges if the graph is symmetric."""
        return self.num_edges // 2 if self.undirected else self.num_edges

    @property
    def density(self) -> float:
        """Average out-degree |E| / |V| — the paper's density column (Table 2)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_undirected_edges / self.num_vertices

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (== total degree for undirected graphs)."""
        if self._degrees is None:
            self._degrees = np.diff(self.xadj)
        return self._degrees

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def neighbors(self, v: int) -> np.ndarray:
        """View of the adjacency list of ``v`` (paper's Γ(v))."""
        return self.adj[self.xadj[v]: self.xadj[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search (neighbour lists are sorted)."""
        row = self.neighbors(u)
        idx = np.searchsorted(row, v)
        return bool(idx < row.shape[0] and row[idx] == v)

    def edge_array(self) -> np.ndarray:
        """Return all arcs as an ``(m, 2)`` array of (src, dst)."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)
        return np.column_stack([src, self.adj])

    def undirected_edge_array(self) -> np.ndarray:
        """Return each undirected edge once as ``(u, v)`` with ``u < v``."""
        arcs = self.edge_array()
        mask = arcs[:, 0] < arcs[:, 1]
        return arcs[mask]

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def symmetrized(self) -> "CSRGraph":
        """Return the undirected version of this graph."""
        if self.undirected:
            return self
        arcs = self.edge_array()
        return CSRGraph.from_edges(self.num_vertices, arcs, undirected=True, name=self.name)

    def subgraph(self, vertices: Sequence[int] | np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Induced subgraph over ``vertices``.

        Returns the subgraph (with vertices relabelled ``0..k-1`` in the order
        given) and the original vertex ids of the new labels.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        lookup = np.full(self.num_vertices, -1, dtype=np.int64)
        lookup[vertices] = np.arange(vertices.shape[0], dtype=np.int64)
        arcs = self.edge_array()
        new_src = lookup[arcs[:, 0]]
        new_dst = lookup[arcs[:, 1]]
        keep = (new_src >= 0) & (new_dst >= 0)
        sub = CSRGraph.from_edges(
            vertices.shape[0],
            np.column_stack([new_src[keep], new_dst[keep]]),
            undirected=self.undirected,
            dedup=True,
            name=f"{self.name}_sub",
        )
        return sub, vertices

    def remove_isolated_vertices(self) -> tuple["CSRGraph", np.ndarray]:
        """Drop degree-0 vertices (used by the link-prediction split).

        Returns the compacted graph and the array mapping new ids to old ids.
        """
        keep = np.flatnonzero(self.degrees > 0)
        return self.subgraph(keep)

    def relabel(self, permutation: np.ndarray) -> "CSRGraph":
        """Apply a vertex permutation: new id ``permutation[v]`` for old ``v``."""
        permutation = np.asarray(permutation, dtype=np.int64)
        if permutation.shape[0] != self.num_vertices:
            raise ValueError("permutation must have one entry per vertex")
        arcs = self.edge_array()
        new_edges = np.column_stack([permutation[arcs[:, 0]], permutation[arcs[:, 1]]])
        return CSRGraph.from_edges(
            self.num_vertices, new_edges, undirected=self.undirected, name=self.name
        )

    # ------------------------------------------------------------------ #
    # Memory model hooks (used by the simulated GPU)
    # ------------------------------------------------------------------ #
    def nbytes(self) -> int:
        """Bytes needed to store the CSR arrays — the paper's (|V|+1)+|E| entries."""
        return int(self.xadj.nbytes + self.adj.nbytes)

    def fingerprint(self) -> str:
        """A content hash of the CSR arrays, stable across equal graphs.

        Used as a cache key (by the :class:`repro.api` hierarchy cache and as
        the :class:`repro.store` lineage key, so it runs on every store
        save/load and every serving request): two graphs with identical
        structure share a fingerprint regardless of their ``name``.  Computed
        once and memoised on the instance — hashing millions of CSR entries
        per request would dominate small queries — which is safe because CSR
        arrays are treated as immutable throughout the codebase.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(np.int64(self.num_vertices).tobytes())
            h.update(np.ascontiguousarray(self.xadj).tobytes())
            h.update(np.ascontiguousarray(self.adj).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------ #
    # Dunder / misc
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_vertices))

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_undirected_edges}, density={self.density:.2f})"
        )

    def copy(self) -> "CSRGraph":
        # Content is equal by construction, so the memoised fingerprint
        # carries over — a copy must not re-hash the arrays.
        return CSRGraph(
            xadj=self.xadj.copy(),
            adj=self.adj.copy(),
            num_vertices=self.num_vertices,
            undirected=self.undirected,
            name=self.name,
            _fingerprint=self._fingerprint,
        )
