"""Host-side sampler backends: swappable ``sample_pairs_for_part`` engines.

GOSH's large-graph engine (Section 3.3) draws every positive sample on the
host while the device trains part pairs, so host-side sampling throughput
directly bounds rotation speed.  This module makes the part-pair sampler
pluggable behind the :class:`SamplerBackend` protocol, mirroring the kernel
layer in :mod:`repro.gpu.backends`:

* ``"reference"`` — the original per-vertex Python loop over CSR rows.
  Semantic oracle.
* ``"vectorized"`` — whole-part batched NumPy sampling over a
  :class:`FilteredAdjacency` sub-CSR (only the edges landing in the partner
  part), built once per (part, partner-part) and reused across rotations
  through a :class:`FilteredAdjacencyCache`.  Default; ≥5× faster pool
  production on 50k-edge graphs (floor enforced by
  ``benchmarks/test_sampler_backend_perf.py``).
* ``"degree_biased"`` — GraphVite-style positive weighting: a vertex's
  partner-part neighbours are drawn proportionally to ``deg^0.75`` instead
  of uniformly, concentrating positive updates on hub neighbours.  Consumes
  randomness exactly like the other backends (one row of B uniforms per
  eligible vertex) but maps each uniform through the row's cumulative
  weight profile, so it shares the batched machinery without sharing the
  uniform-draw semantics (no reference-parity claim).

**Exact parity.**  Both backends consume randomness identically: one row of
``count_per_vertex`` float64 uniforms per *eligible* vertex (a vertex with at
least one neighbour inside the partner part), mapped to a neighbour index
with ``floor(u * count)``.  NumPy's ``Generator.random`` fills arrays
sequentially from the bit stream, so the reference loop's per-vertex
``rng.random(B)`` calls and the vectorized backend's single
``rng.random((n_eligible, B))`` draw produce bit-identical uniforms — the
two backends therefore return *identical* ``(src, dst)`` arrays from a
shared seeded Generator.  Parity is pinned by
``tests/graph/test_sampler_backends.py``.  (``floor(u * count)`` deviates
from a perfectly uniform draw by less than ``count * 2**-53`` per bucket —
negligible against the paper's "almost equivalent to B×K epochs" caveat.)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .csr import CSRGraph
    from .partition import VertexPartition

__all__ = [
    "FilteredAdjacency",
    "FilteredAdjacencyCache",
    "build_filtered_adjacency",
    "SamplerBackend",
    "ReferenceSamplerBackend",
    "VectorizedSamplerBackend",
    "DegreeBiasedSamplerBackend",
    "UnknownSamplerBackendError",
    "DEFAULT_SAMPLER_BACKEND",
    "register_sampler_backend",
    "get_sampler_backend",
    "available_sampler_backends",
]


def _empty_pairs() -> tuple[np.ndarray, np.ndarray]:
    return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)


def pick_indices(u: np.ndarray, counts: np.ndarray | int) -> np.ndarray:
    """Map uniforms in [0, 1) to indices in ``[0, counts)`` — shared by both
    backends so their draws stay bit-identical.

    The ``minimum`` guard covers the (representable but never produced by
    ``Generator.random``) corner where ``u * counts`` rounds up to ``counts``.
    """
    idx = (u * counts).astype(np.int64)
    return np.minimum(idx, np.asarray(counts, dtype=np.int64) - 1)


# --------------------------------------------------------------------------- #
# Filtered adjacency (sub-CSR of edges landing in the partner part)
# --------------------------------------------------------------------------- #
@dataclass
class FilteredAdjacency:
    """Sub-CSR over one part's vertices, keeping only partner-part neighbours.

    ``targets[offsets[i]:offsets[i + 1]]`` are the neighbours of
    ``vertices[i]`` that fall inside the partner part, in CSR row order (so
    draws index the same lists, in the same order, as the reference loop's
    ``nbrs[mask[nbrs]]``).
    """

    vertices: np.ndarray
    offsets: np.ndarray
    targets: np.ndarray

    @property
    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)

    def nbytes(self) -> int:
        return int(self.vertices.nbytes + self.offsets.nbytes + self.targets.nbytes)


def build_filtered_adjacency(graph: "CSRGraph", part_vertices: np.ndarray,
                             partner_mask: np.ndarray) -> FilteredAdjacency:
    """Build the filtered sub-CSR for one (part, partner-part) direction.

    Fully vectorised: gathers the concatenated CSR rows of ``part_vertices``
    and keeps the entries selected by ``partner_mask`` (a boolean mask over
    the whole vertex set), preserving within-row order.
    """
    vertices = np.asarray(part_vertices, dtype=np.int64)
    offsets = np.zeros(vertices.shape[0] + 1, dtype=np.int64)
    xadj, adj = graph.xadj, graph.adj
    deg = xadj[vertices + 1] - xadj[vertices]
    total = int(deg.sum())
    if total == 0:
        return FilteredAdjacency(vertices=vertices, offsets=offsets,
                                 targets=np.zeros(0, dtype=np.int64))
    # Positions of every neighbour entry of the part inside ``adj``:
    # row start repeated per entry, plus the entry's offset within its row.
    row_starts = np.repeat(xadj[vertices], deg)
    within_row = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(deg) - deg, deg)
    nbrs = adj[row_starts + within_row]
    keep = partner_mask[nbrs]
    row_ids = np.repeat(np.arange(vertices.shape[0], dtype=np.int64), deg)
    fcounts = np.bincount(row_ids[keep], minlength=vertices.shape[0])
    np.cumsum(fcounts, out=offsets[1:])
    return FilteredAdjacency(vertices=vertices, offsets=offsets, targets=nbrs[keep])


class FilteredAdjacencyCache:
    """Per-``(from_part, to_part)`` filtered sub-CSRs, built once and reused.

    Keyed like :meth:`~repro.graph.partition.VertexPartition.global_to_local`:
    the cache belongs to one (graph, partition) pair, so every rotation of the
    large-graph engine reuses the same filtered neighbour lists instead of
    re-masking the adjacency on every pool build.

    Thread-safe: the pipelined large-graph engine builds pools on a producer
    thread while on-demand ``acquire`` misses may build on the consumer, so
    lookup-or-build runs under a lock (entries are immutable once built and a
    one-time build per direction is cheap enough to serialise).
    """

    def __init__(self, graph: "CSRGraph", partition: "VertexPartition"):
        self.graph = graph
        self.partition = partition
        self._entries: dict[tuple[int, int], FilteredAdjacency] = {}
        self._masks: dict[int, np.ndarray] = {}
        self._lock = threading.RLock()
        self.builds = 0
        self.hits = 0

    def mask(self, part: int) -> np.ndarray:
        with self._lock:
            mask = self._masks.get(part)
            if mask is None:
                mask = self.partition.mask(part)
                self._masks[part] = mask
            return mask

    def get(self, from_part: int, to_part: int) -> FilteredAdjacency:
        key = (from_part, to_part)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.builds += 1
                entry = build_filtered_adjacency(
                    self.graph, self.partition.parts[from_part], self.mask(to_part))
                self._entries[key] = entry
            else:
                self.hits += 1
            return entry

    def nbytes(self) -> int:
        with self._lock:
            return sum(entry.nbytes() for entry in self._entries.values())

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "builds": self.builds,
                    "hits": self.hits, "nbytes": self.nbytes()}


# --------------------------------------------------------------------------- #
# Backend protocol + implementations
# --------------------------------------------------------------------------- #
@runtime_checkable
class SamplerBackend(Protocol):
    """One part-pair positive-sampling engine.

    Implementations draw, for every vertex of ``part_vertices`` with at least
    one neighbour inside the partner part, exactly ``count_per_vertex``
    neighbours from that filtered list (with replacement); other vertices
    contribute no pairs — the paper's "almost equivalent to B×K epochs"
    caveat.  ``filtered``, when given, is a prebuilt :class:`FilteredAdjacency`
    for exactly ``(part_vertices, partner_mask)``.
    """

    name: str
    #: Whether the backend reads the ``filtered`` sub-CSR.  Callers that own
    #: a :class:`FilteredAdjacencyCache` (the SamplePoolManager) skip the
    #: build entirely for backends that declare ``False``.
    uses_filtered_adjacency: bool

    def sample_pairs(self, graph: "CSRGraph", part_vertices: np.ndarray,
                     partner_mask: np.ndarray, count_per_vertex: int,
                     rng: np.random.Generator, *,
                     filtered: FilteredAdjacency | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
        ...  # pragma: no cover - protocol


class ReferenceSamplerBackend:
    """Per-vertex loop over CSR rows — the semantic oracle.

    Deliberately ignores ``filtered`` and recomputes each vertex's
    partner-part neighbour list from the graph, so it stays an independent
    check on the vectorized path.
    """

    name = "reference"
    uses_filtered_adjacency = False

    def sample_pairs(self, graph: "CSRGraph", part_vertices: np.ndarray,
                     partner_mask: np.ndarray, count_per_vertex: int,
                     rng: np.random.Generator, *,
                     filtered: FilteredAdjacency | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
        del filtered  # the oracle always walks the graph itself
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        B = int(count_per_vertex)
        for v in np.asarray(part_vertices, dtype=np.int64):
            nbrs = graph.neighbors(int(v))
            if nbrs.shape[0] == 0:
                continue
            valid = nbrs[partner_mask[nbrs]]
            if valid.shape[0] == 0:
                continue
            picks = valid[pick_indices(rng.random(B), valid.shape[0])]
            srcs.append(np.full(B, v, dtype=np.int64))
            dsts.append(picks)
        if not srcs:
            return _empty_pairs()
        return np.concatenate(srcs), np.concatenate(dsts)


class VectorizedSamplerBackend:
    """Whole-part batched sampling over the filtered sub-CSR (default).

    One ``rng.random((n_eligible, B))`` draw replaces the per-vertex loop;
    when the caller supplies a cached :class:`FilteredAdjacency` (the
    :class:`~repro.large.sample_pool.SamplePoolManager` does), repeated
    rotations skip the adjacency filtering entirely.
    """

    name = "vectorized"
    uses_filtered_adjacency = True

    def sample_pairs(self, graph: "CSRGraph", part_vertices: np.ndarray,
                     partner_mask: np.ndarray, count_per_vertex: int,
                     rng: np.random.Generator, *,
                     filtered: FilteredAdjacency | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
        if filtered is None:
            filtered = build_filtered_adjacency(graph, part_vertices, partner_mask)
        counts = filtered.counts
        eligible = np.flatnonzero(counts > 0)
        B = int(count_per_vertex)
        if eligible.shape[0] == 0 or B == 0:
            return _empty_pairs()
        ecounts = counts[eligible][:, None]
        idx = pick_indices(rng.random((eligible.shape[0], B)), ecounts)
        dst = filtered.targets[filtered.offsets[eligible][:, None] + idx].ravel()
        src = np.repeat(filtered.vertices[eligible], B)
        return src, dst


class DegreeBiasedSamplerBackend:
    """GraphVite-style ``deg^0.75`` positive-neighbour weighting.

    For every eligible vertex the partner-part neighbour is drawn with
    probability proportional to ``deg(neighbour)^power`` (global degree),
    instead of uniformly — the word2vec/GraphVite noise exponent applied to
    the *positive* pool, for hub-emphasis ablations.  Randomness is consumed
    exactly like the uniform backends (one row of ``B`` float64 uniforms per
    eligible vertex); each uniform is mapped through the row's cumulative
    weight profile with a single batched ``searchsorted``.
    """

    name = "degree_biased"
    uses_filtered_adjacency = True

    def __init__(self, power: float = 0.75):
        self.power = float(power)

    def sample_pairs(self, graph: "CSRGraph", part_vertices: np.ndarray,
                     partner_mask: np.ndarray, count_per_vertex: int,
                     rng: np.random.Generator, *,
                     filtered: FilteredAdjacency | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
        if filtered is None:
            filtered = build_filtered_adjacency(graph, part_vertices, partner_mask)
        counts = filtered.counts
        eligible = np.flatnonzero(counts > 0)
        B = int(count_per_vertex)
        if eligible.shape[0] == 0 or B == 0:
            return _empty_pairs()
        targets = filtered.targets
        deg = (graph.xadj[targets + 1] - graph.xadj[targets]).astype(np.float64)
        # cumw[j] = total weight of targets[:j]; one prepended zero makes the
        # per-row slice [cumw[start], cumw[end]) addressable without branches.
        cumw = np.concatenate(([0.0], np.cumsum(deg ** self.power)))
        starts = filtered.offsets[eligible]
        lo = cumw[starts][:, None]
        span = cumw[starts + counts[eligible]][:, None] - lo
        u = rng.random((eligible.shape[0], B))
        # Row-relative weighted pick: position of lo + u*span inside the global
        # cumulative profile, clipped to the row in case of float round-up.
        idx = np.searchsorted(cumw[1:], lo + u * span, side="right")
        idx = np.minimum(np.maximum(idx, starts[:, None]),
                         (starts + counts[eligible] - 1)[:, None])
        dst = targets[idx].ravel()
        src = np.repeat(filtered.vertices[eligible], B)
        return src, dst


# --------------------------------------------------------------------------- #
# Registry (mirrors repro.gpu.backends)
# --------------------------------------------------------------------------- #
#: The sampler backend used when nothing selects one explicitly.
DEFAULT_SAMPLER_BACKEND = "vectorized"

#: name -> zero-argument factory; instances are created lazily and cached.
_FACTORIES: dict[str, Callable[[], SamplerBackend]] = {
    "reference": ReferenceSamplerBackend,
    "vectorized": VectorizedSamplerBackend,
    "degree_biased": DegreeBiasedSamplerBackend,
}
_INSTANCES: dict[str, SamplerBackend] = {}


class UnknownSamplerBackendError(KeyError):
    """Raised when a sampler-backend name is not registered."""

    def __init__(self, name: str, options: list[str]):
        super().__init__(
            f"unknown sampler backend {name!r}; registered backends: {', '.join(options)}")
        self.name = name
        self.options = options

    def __str__(self) -> str:
        return self.args[0]


def register_sampler_backend(name: str, factory: Callable[[], SamplerBackend], *,
                             replace: bool = False) -> None:
    """Register a zero-argument ``factory`` under ``name`` (case-insensitive)."""
    key = name.strip().lower()
    if not replace and key in _FACTORIES:
        raise ValueError(
            f"sampler backend {key!r} is already registered (pass replace=True to override)")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def get_sampler_backend(backend: str | SamplerBackend | None) -> SamplerBackend:
    """Resolve ``backend`` to an instance.

    Accepts a registered name (cached singleton per name), an object already
    implementing the protocol (returned as-is), or ``None`` for the default.
    """
    if backend is None:
        backend = DEFAULT_SAMPLER_BACKEND
    if not isinstance(backend, str):
        return backend
    key = backend.strip().lower()
    if key not in _FACTORIES:
        raise UnknownSamplerBackendError(backend, available_sampler_backends())
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


def available_sampler_backends() -> list[str]:
    """Registered sampler-backend names, built-ins first."""
    return list(_FACTORIES)
