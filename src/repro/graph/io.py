"""Graph input/output.

Supports the formats the original GOSH tooling consumes:

* plain whitespace-separated edge lists (optionally with a header line),
* a compact binary ``.npz`` CSR container (fast round-trip for benchmarks),
* METIS-like adjacency format (one line per vertex).
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from .csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "read_metis",
    "write_metis",
]


def read_edge_list(path: str | os.PathLike | io.TextIOBase, *, undirected: bool = True,
                   comments: str = "#%", num_vertices: int | None = None,
                   name: str | None = None) -> CSRGraph:
    """Read a whitespace-separated edge list.

    Lines starting with any character in ``comments`` are skipped.  Vertex ids
    may be arbitrary non-negative integers; the graph size is
    ``max(id) + 1`` unless ``num_vertices`` is given.
    """
    close = False
    if isinstance(path, (str, os.PathLike)):
        fh = open(path, "r", encoding="utf-8")
        close = True
        if name is None:
            name = Path(path).stem
    else:
        fh = path
        if name is None:
            name = "edge_list"
    try:
        src: list[int] = []
        dst: list[int] = []
        for line in fh:
            line = line.strip()
            if not line or line[0] in comments:
                continue
            parts = line.split()
            if len(parts) < 2:
                continue
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
    finally:
        if close:
            fh.close()
    edges = np.column_stack([src, dst]).astype(np.int64) if src else np.zeros((0, 2), dtype=np.int64)
    n = num_vertices if num_vertices is not None else (int(edges.max()) + 1 if edges.size else 0)
    return CSRGraph.from_edges(n, edges, undirected=undirected, name=name)


def write_edge_list(graph: CSRGraph, path: str | os.PathLike | io.TextIOBase, *,
                    header: bool = True) -> None:
    """Write a graph as an undirected edge list (each edge once, ``u < v``)."""
    close = False
    if isinstance(path, (str, os.PathLike)):
        fh = open(path, "w", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        if header:
            fh.write(f"# {graph.name}: |V|={graph.num_vertices} |E|={graph.num_undirected_edges}\n")
        edges = graph.undirected_edge_array() if graph.undirected else graph.edge_array()
        for u, v in edges:
            fh.write(f"{u} {v}\n")
    finally:
        if close:
            fh.close()


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save the CSR arrays in a compressed ``.npz`` container."""
    np.savez_compressed(
        path,
        xadj=graph.xadj,
        adj=graph.adj,
        num_vertices=np.int64(graph.num_vertices),
        undirected=np.bool_(graph.undirected),
        name=np.bytes_(graph.name.encode("utf-8")),
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph saved with :func:`save_npz`."""
    data = np.load(path, allow_pickle=False)
    return CSRGraph(
        xadj=data["xadj"],
        adj=data["adj"],
        num_vertices=int(data["num_vertices"]),
        undirected=bool(data["undirected"]),
        name=bytes(data["name"]).decode("utf-8"),
    )


def read_metis(path: str | os.PathLike, *, name: str | None = None) -> CSRGraph:
    """Read a METIS adjacency file (1-indexed, one vertex per line)."""
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().split()
        n = int(header[0])
        edges: list[tuple[int, int]] = []
        for v, line in enumerate(fh):
            for token in line.split():
                edges.append((v, int(token) - 1))
    arr = np.asarray(edges, dtype=np.int64) if edges else np.zeros((0, 2), dtype=np.int64)
    return CSRGraph.from_edges(n, arr, undirected=True,
                               name=name or Path(path).stem)


def write_metis(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a METIS adjacency file (1-indexed)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_undirected_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(u) + 1) for u in graph.neighbors(v)) + "\n")
