"""Graph statistics and structural diagnostics.

Used by the dataset registry (to report Table 2-style rows for the synthetic
twins) and by coarsening-quality metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphStats", "compute_stats", "degree_histogram", "connected_components",
           "largest_component"]


@dataclass
class GraphStats:
    """Summary statistics in the shape of the paper's Table 2."""

    name: str
    num_vertices: int
    num_edges: int
    density: float
    max_degree: int
    mean_degree: float
    degree_skew: float
    isolated_vertices: int

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "Graph": self.name,
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "Density": round(self.density, 2),
            "max deg": self.max_degree,
            "mean deg": round(self.mean_degree, 2),
            "skew": round(self.degree_skew, 2),
        }


def compute_stats(graph: CSRGraph) -> GraphStats:
    """Compute Table 2-style statistics plus degree-skew diagnostics."""
    deg = graph.degrees.astype(np.float64)
    mean = float(deg.mean()) if deg.size else 0.0
    std = float(deg.std()) if deg.size else 0.0
    # Pearson's moment coefficient of skewness; 0 for regular graphs, large
    # for power-law graphs.  Guard against zero variance.
    if std > 0:
        skew = float(np.mean(((deg - mean) / std) ** 3))
    else:
        skew = 0.0
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_undirected_edges,
        density=graph.density,
        max_degree=int(deg.max()) if deg.size else 0,
        mean_degree=mean,
        degree_skew=skew,
        isolated_vertices=int(np.sum(graph.degrees == 0)),
    )


def degree_histogram(graph: CSRGraph, *, bins: int = 32, log: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of vertex degrees (log-spaced bins by default)."""
    deg = graph.degrees
    if deg.size == 0:
        return np.zeros(0), np.zeros(0)
    max_deg = max(int(deg.max()), 1)
    if log:
        edges = np.unique(np.round(np.logspace(0, np.log10(max_deg + 1), bins)).astype(np.int64))
    else:
        edges = np.linspace(0, max_deg + 1, bins).astype(np.int64)
    hist, edges = np.histogram(deg, bins=edges)
    return hist, edges


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Label connected components with an iterative BFS (no recursion).

    Returns an array of component ids, one per vertex.  Treats the graph as
    undirected regardless of its ``undirected`` flag.
    """
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        labels[start] = current
        frontier = [start]
        while frontier:
            next_frontier: list[int] = []
            for v in frontier:
                for u in graph.neighbors(v):
                    u = int(u)
                    if labels[u] == -1:
                        labels[u] = current
                        next_frontier.append(u)
            frontier = next_frontier
        current += 1
    return labels


def largest_component(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph of the largest connected component."""
    labels = connected_components(graph)
    if labels.size == 0:
        return graph, np.zeros(0, dtype=np.int64)
    counts = np.bincount(labels)
    biggest = int(np.argmax(counts))
    vertices = np.flatnonzero(labels == biggest)
    return graph.subgraph(vertices)
