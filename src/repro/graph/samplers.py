"""Positive and negative sample generation.

GOSH trains with VERSE-style noise-contrastive estimation: for every source
vertex one *positive* sample is drawn from the similarity distribution
``sim_Q`` (here adjacency similarity — a uniformly random neighbour) and
``ns`` *negative* samples are drawn from a noise distribution (uniform over
the vertex set).  Section 3.1 draws both on the GPU; Section 3.3 draws the
positives on the host for large graphs.  These samplers implement both,
vectorised over whole epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph
from .sampler_backends import SamplerBackend, get_sampler_backend

__all__ = [
    "PositiveSampler",
    "NegativeSampler",
    "AliasTable",
    "sample_positive_batch",
    "sample_negative_batch",
    "random_walk_positive_batch",
]


def sample_positive_batch(graph: CSRGraph, sources: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
    """Draw one uniformly-random neighbour per source vertex.

    Sources with no neighbours return ``-1``; callers must skip them (the
    link-prediction pipeline removes isolated vertices up front, but coarse
    graphs may still contain them transiently).
    """
    sources = np.asarray(sources, dtype=np.int64)
    deg = graph.xadj[sources + 1] - graph.xadj[sources]
    offsets = np.zeros(sources.shape[0], dtype=np.int64)
    nonzero = deg > 0
    if np.any(nonzero):
        offsets[nonzero] = rng.integers(0, deg[nonzero])
    result = np.full(sources.shape[0], -1, dtype=np.int64)
    result[nonzero] = graph.adj[graph.xadj[sources[nonzero]] + offsets[nonzero]]
    return result


def sample_negative_batch(num_vertices: int, shape: tuple[int, ...] | int,
                          rng: np.random.Generator,
                          *, restrict_to: np.ndarray | None = None) -> np.ndarray:
    """Draw negative samples uniformly over ``[0, num_vertices)``.

    When ``restrict_to`` is given (the large-graph engine restricts negatives
    to the partner sub-matrix part), samples are drawn from that id array.
    """
    if restrict_to is not None:
        idx = rng.integers(0, restrict_to.shape[0], size=shape)
        return restrict_to[idx]
    return rng.integers(0, num_vertices, size=shape, dtype=np.int64)


def random_walk_positive_batch(graph: CSRGraph, sources: np.ndarray, walk_length: int,
                               rng: np.random.Generator) -> np.ndarray:
    """PPR-style positive sampling: terminate a short random walk.

    VERSE's default similarity is personalised PageRank; GOSH uses adjacency
    similarity, but we keep the walk sampler so the VERSE baseline can be run
    with its recommended settings (``alpha = 0.85`` corresponds to a
    geometric walk length).
    """
    current = np.asarray(sources, dtype=np.int64).copy()
    for _ in range(max(1, walk_length)):
        nxt = sample_positive_batch(graph, current, rng)
        stuck = nxt < 0
        nxt[stuck] = current[stuck]
        current = nxt
    return current


@dataclass
class AliasTable:
    """O(1) sampling from a discrete distribution (Walker's alias method).

    GraphVite and several embedding systems sample negatives proportional to
    degree^0.75; the alias table supports that noise distribution.
    """

    prob: np.ndarray
    alias: np.ndarray

    @classmethod
    def from_weights(cls, weights: np.ndarray) -> "AliasTable":
        weights = np.asarray(weights, dtype=np.float64)
        if weights.size == 0:
            raise ValueError("weights must be non-empty")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        n = weights.shape[0]
        scaled = weights * (n / total)
        prob = np.zeros(n, dtype=np.float64)
        alias = np.zeros(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for leftover in small + large:
            prob[leftover] = 1.0
            alias[leftover] = leftover
        return cls(prob=prob, alias=alias)

    def sample(self, size: int | tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        n = self.prob.shape[0]
        idx = rng.integers(0, n, size=size)
        accept = rng.random(size=idx.shape) < self.prob[idx]
        return np.where(accept, idx, self.alias[idx])


class PositiveSampler:
    """Positive-sample stream for a graph.

    ``strategy`` selects between the paper's adjacency similarity
    (``"adjacency"``) and VERSE's PPR walks (``"ppr"``).  ``sampler_backend``
    selects the part-pair sampling engine (see
    :mod:`repro.graph.sampler_backends`): ``"reference"`` (per-vertex loop,
    the oracle), ``"vectorized"`` (whole-part batched, the default), or any
    registered third-party backend — by name, instance, or ``None`` for the
    registry default.
    """

    def __init__(self, graph: CSRGraph, *, strategy: str = "adjacency",
                 walk_length: int = 3, seed: int | np.random.Generator | None = 0,
                 sampler_backend: str | SamplerBackend | None = None):
        if strategy not in ("adjacency", "ppr"):
            raise ValueError(f"unknown positive sampling strategy: {strategy!r}")
        self.graph = graph
        self.strategy = strategy
        self.walk_length = walk_length
        self.backend = get_sampler_backend(sampler_backend)
        self.rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    def sample(self, sources: np.ndarray) -> np.ndarray:
        if self.strategy == "adjacency":
            return sample_positive_batch(self.graph, sources, self.rng)
        return random_walk_positive_batch(self.graph, sources, self.walk_length, self.rng)

    def sample_pairs_for_part(self, part_a: np.ndarray, part_b_mask: np.ndarray,
                              count_per_vertex: int) -> tuple[np.ndarray, np.ndarray]:
        """Host-side positive sampling for the large-graph engine.

        For every vertex in ``part_a`` draw up to ``count_per_vertex``
        neighbours that fall inside the partner part (``part_b_mask`` is a
        boolean mask over the whole vertex set).  Vertices without neighbours
        in the partner part contribute no pairs — the paper's "almost
        equivalent to B x K epochs" caveat.

        Delegates to the configured sampler backend; every backend draws
        identical pairs from a shared seeded RNG (see
        :mod:`repro.graph.sampler_backends`).
        """
        part_a = np.asarray(part_a, dtype=np.int64)
        return self.backend.sample_pairs(self.graph, part_a, part_b_mask,
                                         count_per_vertex, self.rng)


class NegativeSampler:
    """Negative-sample stream (uniform or degree^0.75 noise distribution)."""

    def __init__(self, num_vertices: int, *, degrees: np.ndarray | None = None,
                 power: float = 0.0, seed: int | np.random.Generator | None = 0):
        self.num_vertices = num_vertices
        self.rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._alias: AliasTable | None = None
        if power > 0.0:
            if degrees is None:
                raise ValueError("degrees required when power > 0")
            weights = np.power(np.asarray(degrees, dtype=np.float64), power)
            weights[weights <= 0] = 1e-12
            self._alias = AliasTable.from_weights(weights)

    def sample(self, shape: int | tuple[int, ...],
               restrict_to: np.ndarray | None = None) -> np.ndarray:
        if self._alias is not None and restrict_to is None:
            return self._alias.sample(shape, self.rng)
        return sample_negative_batch(self.num_vertices, shape, self.rng, restrict_to=restrict_to)
