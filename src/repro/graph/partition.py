"""Vertex-set partitioning for the large-graph engine.

Section 3.3 of the paper partitions the vertex set V_i into K_i disjoint
subsets, which induces a partition P_i of the embedding matrix into
sub-matrices that are rotated through the (simulated) GPU.  The number of
parts K_i is derived from the device-memory budget: each resident sub-matrix
occupies ``ceil(|V_i| / K_i) * d * itemsize`` bytes and ``P_GPU`` of them must
fit simultaneously alongside the sample pools.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["VertexPartition", "contiguous_partition", "compute_num_parts"]


@dataclass
class VertexPartition:
    """A K-way disjoint partition of ``[0, num_vertices)``.

    Attributes
    ----------
    part_of:
        Array mapping each vertex to its part id.
    parts:
        List of vertex-id arrays, one per part.
    """

    num_vertices: int
    part_of: np.ndarray
    parts: list[np.ndarray]

    @property
    def num_parts(self) -> int:
        return len(self.parts)

    def part_sizes(self) -> np.ndarray:
        return np.array([p.shape[0] for p in self.parts], dtype=np.int64)

    def mask(self, k: int) -> np.ndarray:
        """Boolean mask over all vertices selecting part ``k``."""
        m = np.zeros(self.num_vertices, dtype=bool)
        m[self.parts[k]] = True
        return m

    def global_to_local(self) -> np.ndarray:
        """Global-id → row-within-its-part lookup array, built once and cached.

        ``g2l[v]`` is the row of vertex ``v`` inside the sub-matrix of the
        part that owns it; because parts are disjoint one array serves every
        (V^a, V^b) pair of a rotation.  The cache is keyed to this partition
        instance — the pair kernels used to rebuild an equivalent Python
        ``dict`` on every call.
        """
        cached = getattr(self, "_global_to_local", None)
        if cached is None:
            cached = np.empty(self.num_vertices, dtype=np.int64)
            for part in self.parts:
                cached[part] = np.arange(part.shape[0], dtype=np.int64)
            self._global_to_local = cached
        return cached

    def validate(self) -> None:
        """Check disjointness and coverage; raise ``ValueError`` otherwise."""
        seen = np.zeros(self.num_vertices, dtype=np.int64)
        for p in self.parts:
            seen[p] += 1
        if np.any(seen != 1):
            raise ValueError("partition must cover every vertex exactly once")
        for k, p in enumerate(self.parts):
            if not np.all(self.part_of[p] == k):
                raise ValueError("part_of is inconsistent with parts")


def contiguous_partition(num_vertices: int, num_parts: int) -> VertexPartition:
    """Split ``[0, num_vertices)`` into ``num_parts`` contiguous ranges.

    Contiguous ranges keep each sub-matrix a contiguous slice of the
    embedding matrix, which is what makes host<->device copies cheap in the
    original implementation (and NumPy slices views here).
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    if num_parts > max(num_vertices, 1):
        num_parts = max(num_vertices, 1)
    boundaries = np.linspace(0, num_vertices, num_parts + 1, dtype=np.int64)
    parts = [np.arange(boundaries[k], boundaries[k + 1], dtype=np.int64)
             for k in range(num_parts)]
    part_of = np.zeros(num_vertices, dtype=np.int64)
    for k, p in enumerate(parts):
        part_of[p] = k
    return VertexPartition(num_vertices=num_vertices, part_of=part_of, parts=parts)


def compute_num_parts(num_vertices: int, dim: int, itemsize: int,
                      device_bytes: int, *, resident_parts: int = 3,
                      reserve_fraction: float = 0.15) -> int:
    """Derive K (the paper's ``GetEmbeddingPartInfo``).

    ``resident_parts`` sub-matrices must fit on the device together, leaving
    ``reserve_fraction`` of the memory for sample pools and scratch space.

    Returns at least 1; returns 1 when the whole matrix fits (no partitioning
    needed).
    """
    if num_vertices <= 0:
        return 1
    usable = device_bytes * (1.0 - reserve_fraction)
    full_matrix = num_vertices * dim * itemsize
    if full_matrix <= usable:
        return 1
    per_part_budget = usable / resident_parts
    max_vertices_per_part = int(per_part_budget // (dim * itemsize))
    if max_vertices_per_part <= 0:
        raise ValueError(
            "device memory too small to hold even a single vertex vector; "
            f"need at least {dim * itemsize} usable bytes"
        )
    k = int(np.ceil(num_vertices / max_vertices_per_part))
    return max(k, 2)


def partition_degrees(graph: CSRGraph, partition: VertexPartition) -> np.ndarray:
    """Total degree per part (useful for load-balance diagnostics)."""
    return np.array([int(graph.degrees[p].sum()) for p in partition.parts], dtype=np.int64)
