"""Synthetic graph generators.

The paper evaluates on SNAP / network-repository graphs (Table 2) that are
not redistributable here and, at up to 1.8 billion edges, are far beyond a
single-core Python environment.  These generators produce scaled-down
synthetic *twins* with the structural properties that matter for GOSH:

* heavy-tailed degree distributions (hubs) — exercised by the hub-collision
  rule of MultiEdgeCollapse,
* community structure — what link prediction actually learns,
* controllable density — matching the |E|/|V| column of Table 2.

All generators are deterministic given a seed and vectorised.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "stochastic_block_model",
    "watts_strogatz",
    "powerlaw_cluster",
    "social_community",
    "star",
    "ring",
    "complete",
    "grid_2d",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def erdos_renyi(n: int, p: float | None = None, *, m: int | None = None,
                seed: int | np.random.Generator | None = 0, name: str = "erdos_renyi") -> CSRGraph:
    """G(n, p) or G(n, m) random graph.

    Exactly one of ``p`` (edge probability) or ``m`` (edge count) must be
    given.  For ``m`` the edges are sampled without replacement.
    """
    rng = _rng(seed)
    if (p is None) == (m is None):
        raise ValueError("exactly one of p or m must be provided")
    if m is None:
        expected = p * n * (n - 1) / 2.0
        m = int(rng.poisson(expected))
    m = min(m, n * (n - 1) // 2)
    # Sample edges by rejection on a 64-bit key to avoid materialising n^2 pairs.
    edges = np.zeros((0, 2), dtype=np.int64)
    seen: set[int] = set()
    need = m
    while need > 0:
        u = rng.integers(0, n, size=need * 2, dtype=np.int64)
        v = rng.integers(0, n, size=need * 2, dtype=np.int64)
        mask = u != v
        u, v = u[mask], v[mask]
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        keys = lo * np.int64(n) + hi
        fresh_u, fresh_v = [], []
        for a, b, k in zip(lo, hi, keys):
            if int(k) not in seen:
                seen.add(int(k))
                fresh_u.append(a)
                fresh_v.append(b)
                if len(seen) >= m:
                    break
        if fresh_u:
            edges = np.vstack([edges, np.column_stack([fresh_u, fresh_v])])
        need = m - len(seen)
        if n * (n - 1) // 2 <= len(seen):
            break
    return CSRGraph.from_edges(n, edges, undirected=True, name=name)


def barabasi_albert(n: int, m: int = 3, *, seed: int | np.random.Generator | None = 0,
                    name: str = "barabasi_albert") -> CSRGraph:
    """Preferential-attachment graph — heavy-tailed degree distribution.

    Each new vertex attaches to ``m`` existing vertices chosen proportionally
    to their degree (implemented with the repeated-endpoints trick).
    """
    rng = _rng(seed)
    if n < m + 1:
        raise ValueError(f"need n > m, got n={n}, m={m}")
    targets = list(range(m))
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []
    for v in range(m, n):
        for t in targets:
            edges.append((v, t))
        repeated.extend(targets)
        repeated.extend([v] * m)
        # Choose m unique targets for the next vertex from the repeated list.
        targets = []
        chosen: set[int] = set()
        while len(targets) < m:
            x = repeated[int(rng.integers(0, len(repeated)))]
            if x not in chosen:
                chosen.add(x)
                targets.append(x)
    return CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64), undirected=True, name=name)


def rmat(scale: int, edge_factor: int = 16, *, a: float = 0.57, b: float = 0.19,
         c: float = 0.19, seed: int | np.random.Generator | None = 0,
         name: str = "rmat") -> CSRGraph:
    """Recursive-MATrix (Graph500-style) generator.

    Produces skewed, community-like graphs similar to social networks; this
    is the main "twin" generator for the paper's large web/social graphs.
    ``n = 2**scale`` vertices and approximately ``edge_factor * n`` edges.
    """
    rng = _rng(seed)
    n = 1 << scale
    m = edge_factor * n
    d = 1.0 - (a + b + c)
    if d < 0:
        raise ValueError("a + b + c must be <= 1")
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Vectorised bit-by-bit quadrant selection: at each recursion level the
    # edge falls into quadrant a (up-left), b (up-right), c (down-left) or
    # d (down-right); the row bit is set for c/d, the column bit for b/d.
    for _bit in range(scale):
        u = rng.random(m)
        row_bit = u >= (a + b)
        v = rng.random(m)
        col_thresh = np.where(row_bit, c / max(c + d, 1e-12), a / max(a + b, 1e-12))
        col_bit = v >= col_thresh
        src = (src << 1) | row_bit.astype(np.int64)
        dst = (dst << 1) | col_bit.astype(np.int64)
    # Permute vertex ids so that hubs are not clustered at low ids.
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]
    return CSRGraph.from_edges(n, np.column_stack([src, dst]), undirected=True, name=name)


def stochastic_block_model(block_sizes: list[int], p_in: float, p_out: float, *,
                           seed: int | np.random.Generator | None = 0,
                           name: str = "sbm") -> CSRGraph:
    """Stochastic block model — explicit community structure.

    Useful for link-prediction sanity tests: embeddings must separate
    communities for AUCROC to be high.
    """
    rng = _rng(seed)
    n = int(sum(block_sizes))
    labels = np.repeat(np.arange(len(block_sizes)), block_sizes)
    edges: list[np.ndarray] = []
    offsets = np.concatenate([[0], np.cumsum(block_sizes)])
    for i, si in enumerate(block_sizes):
        for j in range(i, len(block_sizes)):
            sj = block_sizes[j]
            p = p_in if i == j else p_out
            if p <= 0:
                continue
            if i == j:
                expected = p * si * (si - 1) / 2.0
            else:
                expected = p * si * sj
            cnt = int(rng.poisson(expected))
            if cnt == 0:
                continue
            u = rng.integers(0, si, size=cnt) + offsets[i]
            v = rng.integers(0, sj, size=cnt) + offsets[j]
            mask = u != v
            edges.append(np.column_stack([u[mask], v[mask]]))
    if edges:
        all_edges = np.vstack(edges)
    else:
        all_edges = np.zeros((0, 2), dtype=np.int64)
    g = CSRGraph.from_edges(n, all_edges, undirected=True, name=name)
    return g


def watts_strogatz(n: int, k: int = 4, beta: float = 0.1, *,
                   seed: int | np.random.Generator | None = 0,
                   name: str = "watts_strogatz") -> CSRGraph:
    """Small-world ring-lattice rewiring model."""
    rng = _rng(seed)
    if k % 2 != 0:
        raise ValueError("k must be even")
    base_src = np.repeat(np.arange(n, dtype=np.int64), k // 2)
    shifts = np.tile(np.arange(1, k // 2 + 1, dtype=np.int64), n)
    base_dst = (base_src + shifts) % n
    rewire = rng.random(base_src.shape[0]) < beta
    base_dst = np.where(rewire, rng.integers(0, n, size=base_src.shape[0]), base_dst)
    mask = base_src != base_dst
    return CSRGraph.from_edges(n, np.column_stack([base_src[mask], base_dst[mask]]),
                               undirected=True, name=name)


def powerlaw_cluster(n: int, m: int = 3, p_triangle: float = 0.3, *,
                     seed: int | np.random.Generator | None = 0,
                     name: str = "powerlaw_cluster") -> CSRGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Combines preferential attachment with triangle closure; a good twin for
    social graphs where both skew and clustering matter.
    """
    rng = _rng(seed)
    if n < m + 1:
        raise ValueError("need n > m")
    repeated: list[int] = list(range(m))
    edges: list[tuple[int, int]] = []
    adjacency: dict[int, set[int]] = {i: set() for i in range(n)}
    for v in range(m, n):
        added = 0
        last_target = None
        while added < m:
            if last_target is not None and rng.random() < p_triangle and adjacency[last_target]:
                candidates = list(adjacency[last_target])
                t = candidates[int(rng.integers(0, len(candidates)))]
            else:
                t = repeated[int(rng.integers(0, len(repeated)))]
            if t != v and t not in adjacency[v]:
                edges.append((v, t))
                adjacency[v].add(t)
                adjacency[t].add(v)
                repeated.append(t)
                repeated.append(v)
                last_target = t
                added += 1
    return CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64), undirected=True, name=name)


def social_community(n: int, *, intra_degree: int = 12, inter_fraction: float = 0.03,
                     hub_fraction: float = 0.005, hub_reach: float = 0.08,
                     community_scale: int = 40, rewire: float = 0.1,
                     seed: int | np.random.Generator | None = 0,
                     name: str = "social_community") -> CSRGraph:
    """Community-structured social graph with hubs — the main "twin" generator.

    Real social/web graphs combine three properties that matter for GOSH:
    dense local communities (what makes link prediction achievable at 95%+
    AUCROC), a heavy-tailed degree distribution with hub vertices (what the
    hub-collision rule of MultiEdgeCollapse is designed around), and a small
    fraction of long-range edges.  The generator builds exactly that:

    * community sizes drawn from a Pareto distribution (min 20 vertices,
      scale ``community_scale``),
    * each community wired as a small-world ring lattice with ``intra_degree``
      neighbours and ``rewire`` rewiring probability,
    * ``inter_fraction`` of the intra-community edge count added as uniformly
      random cross-community edges,
    * ``hub_fraction`` of the vertices promoted to hubs, each connected to a
      random ``hub_reach`` fraction of the graph drawn from a *contiguous
      window* of communities — hubs in real networks are followed by a few
      related communities rather than uniformly random vertices, and that
      locality is what lets hub-centred coarsening clusters stay meaningful.
    """
    rng = _rng(seed)
    if n < 30:
        raise ValueError("social_community needs at least 30 vertices")
    # Pareto-distributed community sizes covering all n vertices.
    sizes: list[int] = []
    remaining = n
    while remaining > 0:
        size = int(min(remaining, max(20, rng.pareto(1.5) * community_scale + 20)))
        sizes.append(size)
        remaining -= size
    edge_blocks: list[np.ndarray] = []
    offset = 0
    for size in sizes:
        k = min(intra_degree, max(2, (size - 1) // 2 * 2))
        if k % 2:
            k -= 1
        sub = watts_strogatz(size, k=max(2, k), beta=rewire,
                             seed=int(rng.integers(0, 1 << 30)))
        edge_blocks.append(sub.undirected_edge_array() + offset)
        offset += size
    edges = np.vstack(edge_blocks)
    # Cross-community noise edges.
    m_inter = int(inter_fraction * edges.shape[0])
    if m_inter > 0:
        u = rng.integers(0, n, size=m_inter)
        v = rng.integers(0, n, size=m_inter)
        edges = np.vstack([edges, np.column_stack([u, v])])
    # Hub vertices spanning a window of neighbouring communities.
    num_hubs = max(1, int(hub_fraction * n))
    hubs = rng.choice(n, size=num_hubs, replace=False)
    hub_blocks: list[np.ndarray] = []
    for hub in hubs:
        reach = max(8, int(hub_reach * n))
        start = int(rng.integers(0, max(1, n - reach)))
        window = np.arange(start, min(n, start + reach))
        targets = rng.choice(window, size=min(reach, window.shape[0]), replace=False)
        hub_blocks.append(np.column_stack([np.full(targets.shape[0], hub), targets]))
    if hub_blocks:
        edges = np.vstack([edges] + hub_blocks)
    return CSRGraph.from_edges(n, edges, undirected=True, name=name)


def star(n: int, *, name: str = "star") -> CSRGraph:
    """Star graph — a single hub connected to n-1 leaves."""
    leaves = np.arange(1, n, dtype=np.int64)
    edges = np.column_stack([np.zeros(n - 1, dtype=np.int64), leaves])
    return CSRGraph.from_edges(n, edges, undirected=True, name=name)


def ring(n: int, *, name: str = "ring") -> CSRGraph:
    """Cycle graph."""
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return CSRGraph.from_edges(n, np.column_stack([u, v]), undirected=True, name=name)


def complete(n: int, *, name: str = "complete") -> CSRGraph:
    """Complete graph K_n."""
    u, v = np.triu_indices(n, k=1)
    return CSRGraph.from_edges(n, np.column_stack([u, v]).astype(np.int64),
                               undirected=True, name=name)


def grid_2d(rows: int, cols: int, *, name: str = "grid") -> CSRGraph:
    """2D lattice — low-degree, highly regular (worst case for coarsening skew)."""
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right = np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    down = np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    return CSRGraph.from_edges(rows * cols, np.vstack([right, down]), undirected=True, name=name)
