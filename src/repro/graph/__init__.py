"""Graph substrate: CSR graphs, generators, IO, samplers, partitioning, stats."""

from .csr import CSRGraph, coo_to_csr, validate_csr
from .generators import (
    barabasi_albert,
    complete,
    erdos_renyi,
    grid_2d,
    powerlaw_cluster,
    ring,
    rmat,
    social_community,
    star,
    stochastic_block_model,
    watts_strogatz,
)
from .io import load_npz, read_edge_list, read_metis, save_npz, write_edge_list, write_metis
from .partition import VertexPartition, compute_num_parts, contiguous_partition
from .samplers import (
    AliasTable,
    NegativeSampler,
    PositiveSampler,
    random_walk_positive_batch,
    sample_negative_batch,
    sample_positive_batch,
)
from .stats import GraphStats, compute_stats, connected_components, degree_histogram, largest_component

__all__ = [
    "CSRGraph",
    "coo_to_csr",
    "validate_csr",
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "stochastic_block_model",
    "watts_strogatz",
    "powerlaw_cluster",
    "social_community",
    "star",
    "ring",
    "complete",
    "grid_2d",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "read_metis",
    "write_metis",
    "VertexPartition",
    "contiguous_partition",
    "compute_num_parts",
    "PositiveSampler",
    "NegativeSampler",
    "AliasTable",
    "sample_positive_batch",
    "sample_negative_batch",
    "random_walk_positive_batch",
    "GraphStats",
    "compute_stats",
    "degree_histogram",
    "connected_components",
    "largest_component",
]
